//! Client participation policies: eviction and re-admission.
//!
//! "These volatile systems vary in spatial and temporal noise" (Section
//! II-B): a device whose calibration degrades mid-run — Casablanca's
//! Fig. 6 divergence is the canonical example — keeps injecting noisy
//! gradients under the seed master loop, because weighting can only
//! attenuate it, never bench it. A [`ClientHealth`] policy decides per
//! absorbed result whether the reporting client stays in the rotation,
//! and — via the master's per-client probes of *reported* calibration —
//! whether an evicted client has recalibrated well enough to rejoin.
//! The master reroutes an evicted client's share of the cyclic schedule
//! to the remaining fleet simply by never offering it as a scheduling
//! candidate until re-admission.

use crate::weighting as eq2;
use qdevice::{QpuBackend, SimTime};
use std::fmt;
use transpile::CircuitMetrics;

/// Snapshot handed to a [`ClientHealth`] decision.
///
/// `p_correct` and `baseline_p` are measured in the *same* units for
/// both [`ClientHealth::on_result`] and [`ClientHealth::readmit`]: the
/// all-template mean probe of the client's reported calibration (see
/// [`HealthProbe`]), so relative thresholds compare like with like even
/// on problems whose templates score very differently. (Only a bare
/// master with no probes — unit tests, hand-built shims — falls back
/// to per-result scores.)
#[derive(Clone, Debug)]
pub struct HealthContext {
    /// The client under consideration.
    pub client: usize,
    /// The client's current all-template Eq. 2 score from *reported*
    /// calibration, probed at the decision's virtual time.
    pub p_correct: f64,
    /// The best such score this client has ever shown (its healthy
    /// baseline; `0` until it first reports).
    pub baseline_p: f64,
    /// Current virtual time, hours.
    pub now_hours: f64,
    /// Clients currently active (eviction is refused when this is 1:
    /// the fleet never talks itself down to zero devices).
    pub active_clients: usize,
    /// Fleet width.
    pub n_clients: usize,
}

/// Verdict on the reporting client after one absorbed result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthVerdict {
    /// Keep the client in the rotation.
    Healthy,
    /// Bench the client: no further tasks until re-admission.
    Evict,
}

/// Decides which clients participate in the ensemble.
///
/// Implementations must be deterministic pure functions of the context
/// (see [`Scheduler`](crate::policy::Scheduler) for why).
pub trait ClientHealth: fmt::Debug + Send + Sync {
    /// Policy name as reported in [`PolicyTelemetry`](crate::report::PolicyTelemetry).
    fn name(&self) -> &'static str;

    /// Whether this policy can ever evict. When `false` (only
    /// [`AlwaysHealthy`] ships that way) the master skips health
    /// bookkeeping — baselines, per-absorb probes, backend probe
    /// clones — entirely, so the default stack pays nothing.
    fn monitors(&self) -> bool {
        true
    }

    /// Verdict on the reporting client after its result is absorbed.
    fn on_result(&self, ctx: &HealthContext) -> HealthVerdict;

    /// Whether an evicted client may rejoin, given a fresh probe of its
    /// reported calibration. Called once per evicted client per
    /// absorbed result.
    fn readmit(&self, ctx: &HealthContext) -> bool;
}

/// The seed behavior: every client always participates.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysHealthy;

impl ClientHealth for AlwaysHealthy {
    fn name(&self) -> &'static str {
        "always-healthy"
    }

    fn monitors(&self) -> bool {
        false
    }

    fn on_result(&self, _ctx: &HealthContext) -> HealthVerdict {
        HealthVerdict::Healthy
    }

    fn readmit(&self, _ctx: &HealthContext) -> bool {
        true
    }
}

/// Drift-aware eviction: bench a client whose reported `P_correct`
/// falls below `evict_below` times its own healthy baseline, and
/// re-admit it once a probe of its reported calibration recovers to
/// `readmit_above` times the baseline (i.e. after a recalibration cycle
/// restores the device). Thresholds are *relative* to each client's
/// best observed score, so a permanently mediocre device is not
/// confused with a good device mid-degradation.
#[derive(Clone, Copy, Debug)]
pub struct DriftEviction {
    evict_below: f64,
    readmit_above: f64,
}

impl DriftEviction {
    /// Creates the policy.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] unless
    /// `0 < evict_below <= readmit_above` and both are finite — a
    /// re-admission bar below the eviction bar would flap a client in
    /// and out on every probe.
    ///
    /// [`EqcError::InvalidConfig`]: crate::EqcError
    pub fn new(evict_below: f64, readmit_above: f64) -> Result<Self, crate::error::EqcError> {
        if !(evict_below.is_finite() && evict_below > 0.0) {
            return Err(crate::error::EqcError::InvalidConfig(format!(
                "eviction threshold must be positive and finite, got {evict_below}"
            )));
        }
        if !(readmit_above.is_finite() && readmit_above >= evict_below) {
            return Err(crate::error::EqcError::InvalidConfig(format!(
                "re-admission threshold must be finite and >= the eviction \
                 threshold, got {readmit_above} < {evict_below}"
            )));
        }
        Ok(DriftEviction {
            evict_below,
            readmit_above,
        })
    }

    /// The fraction of baseline below which a client is evicted.
    pub fn evict_below(&self) -> f64 {
        self.evict_below
    }

    /// The fraction of baseline a probe must recover to for
    /// re-admission.
    pub fn readmit_above(&self) -> f64 {
        self.readmit_above
    }
}

impl Default for DriftEviction {
    /// Evict below 60% of baseline, re-admit at 85% — wide enough apart
    /// that per-cycle calibration jitter does not flap a healthy device.
    fn default() -> Self {
        DriftEviction {
            evict_below: 0.6,
            readmit_above: 0.85,
        }
    }
}

impl ClientHealth for DriftEviction {
    fn name(&self) -> &'static str {
        "drift-eviction"
    }

    fn on_result(&self, ctx: &HealthContext) -> HealthVerdict {
        if ctx.active_clients > 1
            && ctx.baseline_p > 0.0
            && ctx.p_correct < self.evict_below * ctx.baseline_p
        {
            HealthVerdict::Evict
        } else {
            HealthVerdict::Healthy
        }
    }

    fn readmit(&self, ctx: &HealthContext) -> bool {
        ctx.baseline_p > 0.0 && ctx.p_correct >= self.readmit_above * ctx.baseline_p
    }
}

/// The master's window onto one client's device for health probing and
/// queue estimation: a clone of the backend (whose reported calibration
/// is a pure function of virtual time) plus the client's transpiled
/// circuit metrics (the Eq. 2 inputs). Built once per session, so the
/// master can score an *evicted* client — whose `ClientNode` may be
/// checked out by a worker thread — without touching it.
#[derive(Clone, Debug)]
pub(crate) struct HealthProbe {
    backend: QpuBackend,
    metrics: Vec<CircuitMetrics>,
}

impl HealthProbe {
    pub(crate) fn new(backend: QpuBackend, metrics: Vec<CircuitMetrics>) -> Self {
        HealthProbe { backend, metrics }
    }

    /// The device's Eq. 2 score over all templates from the calibration
    /// it *reports* at `t` — the same figure Algorithm 2's clients
    /// compute at circuit induction time.
    pub(crate) fn p_correct_at(&self, t: SimTime) -> f64 {
        let cal = self.backend.reported_calibration(t);
        let mean = self
            .metrics
            .iter()
            .map(|m| eq2::p_correct(m, &cal))
            .sum::<f64>()
            / self.metrics.len().max(1) as f64;
        eq2::bound_p_correct(mean)
    }

    /// Estimated queue wait (seconds) for a job submitted at `t`.
    pub(crate) fn queue_wait_s(&self, t: SimTime) -> f64 {
        self.backend.queue().wait_s(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(p: f64, baseline: f64, active: usize) -> HealthContext {
        HealthContext {
            client: 0,
            p_correct: p,
            baseline_p: baseline,
            now_hours: 1.0,
            active_clients: active,
            n_clients: 3,
        }
    }

    #[test]
    fn always_healthy_never_evicts() {
        assert_eq!(
            AlwaysHealthy.on_result(&ctx(0.0, 0.9, 3)),
            HealthVerdict::Healthy
        );
        assert!(AlwaysHealthy.readmit(&ctx(0.0, 0.9, 3)));
    }

    #[test]
    fn drift_eviction_triggers_relative_to_baseline() {
        let policy = DriftEviction::new(0.6, 0.85).unwrap();
        // Above threshold: healthy.
        assert_eq!(policy.on_result(&ctx(0.8, 0.9, 3)), HealthVerdict::Healthy);
        // Degraded past 60% of baseline: evicted.
        assert_eq!(policy.on_result(&ctx(0.5, 0.9, 3)), HealthVerdict::Evict);
        // A mediocre device near its own baseline is not evicted.
        assert_eq!(policy.on_result(&ctx(0.3, 0.32, 3)), HealthVerdict::Healthy);
        // Never evict the last active client.
        assert_eq!(policy.on_result(&ctx(0.1, 0.9, 1)), HealthVerdict::Healthy);
        // No baseline yet: nothing to judge against.
        assert_eq!(policy.on_result(&ctx(0.1, 0.0, 3)), HealthVerdict::Healthy);
    }

    #[test]
    fn drift_eviction_readmits_on_recovery() {
        let policy = DriftEviction::default();
        assert!(!policy.readmit(&ctx(0.5, 0.9, 2)));
        assert!(policy.readmit(&ctx(0.87, 0.9, 2)));
    }

    #[test]
    fn drift_eviction_rejects_flapping_thresholds() {
        assert!(DriftEviction::new(0.0, 0.9).is_err());
        assert!(DriftEviction::new(-0.2, 0.9).is_err());
        assert!(DriftEviction::new(0.9, 0.6).is_err(), "readmit below evict");
        assert!(DriftEviction::new(f64::NAN, 0.9).is_err());
        assert!(DriftEviction::new(0.6, f64::INFINITY).is_err());
    }
}
