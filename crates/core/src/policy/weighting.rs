//! Gradient-weighting policies.
//!
//! Eq. 4 of the paper multiplies the ASGD learning rate by a per-client
//! weight. *How* that weight is derived is a contested design axis:
//! the paper normalizes Eq. 2 `P_correct` scores into a band
//! ([`FidelityWeighted`]); Rajamani et al. (arXiv:2509.17982) report
//! that uniform equi-ensemble weighting systematically beats
//! fidelity-weighted VQE ([`EquiEnsemble`]); and the ASGD literature
//! attenuates updates by their staleness ([`StalenessDecay`]). Each is
//! a [`Weighting`] impl the master consults per absorbed result.

use crate::error::EqcError;
use crate::weighting::WeightBounds;
use std::fmt;

/// Snapshot of the weighting state at the moment one result is absorbed.
#[derive(Clone, Debug)]
pub struct WeightContext<'a> {
    /// The client whose result is being absorbed.
    pub client: usize,
    /// Fleet width.
    pub n_clients: usize,
    /// Latest reported `P_correct` per client (1.0 until first report).
    pub last_p_correct: &'a [f64],
    /// Whether each client has reported at least once.
    pub reported: &'a [bool],
    /// The configured weight band ([`EqcConfig::weight_bounds`]); `None`
    /// trains unweighted.
    ///
    /// [`EqcConfig::weight_bounds`]: crate::EqcConfig
    pub bounds: Option<WeightBounds>,
    /// Parameter updates applied since this result's task was
    /// dispatched (the ASGD delay `D` of Eq. 12 at absorb time).
    pub staleness: u64,
}

/// A weighting decision: the scalar applied to this result's gradient,
/// plus (optionally) the full per-client weight vector to record in the
/// report's weight trace (Fig. 5).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightDecision {
    /// Multiplier on the result's gradient contribution (Eq. 4's `w`).
    pub weight: f64,
    /// When `Some`, the master appends this per-client vector to
    /// [`TrainingReport::weight_trace`](crate::TrainingReport).
    pub ensemble_trace: Option<Vec<f64>>,
}

impl WeightDecision {
    /// An unweighted decision (`w = 1`, no trace sample).
    pub fn unweighted() -> Self {
        WeightDecision {
            weight: 1.0,
            ensemble_trace: None,
        }
    }
}

/// Computes the weight of one absorbed gradient contribution.
///
/// Implementations must be deterministic pure functions of the context
/// (see [`Scheduler`](crate::policy::Scheduler) for why).
pub trait Weighting: fmt::Debug + Send + Sync {
    /// Policy name as reported in [`PolicyTelemetry`](crate::report::PolicyTelemetry).
    fn name(&self) -> &'static str;

    /// Human-readable label for telemetry. Defaults to [`Weighting::name`];
    /// combinators like [`Composed`] override it to spell out their
    /// parts (e.g. `fidelity*staleness-decay`).
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// The weight for the result described by `ctx`.
    fn weight(&self, ctx: &WeightContext<'_>) -> WeightDecision;
}

/// Weights from the latest `P_correct` per client: clients that have not
/// reported yet ride at the band midpoint so one fast device cannot
/// dominate the normalization early. Shared by every executor.
pub(crate) fn effective_weights(last_p: &[f64], seen: &[bool], bounds: WeightBounds) -> Vec<f64> {
    let reported: Vec<f64> = last_p
        .iter()
        .zip(seen)
        .filter(|(_, s)| **s)
        .map(|(p, _)| *p)
        .collect();
    if reported.len() < 2 {
        return vec![bounds.midpoint(); last_p.len()];
    }
    let min = reported.iter().copied().fold(f64::INFINITY, f64::min);
    let max = reported.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    last_p
        .iter()
        .zip(seen)
        .map(|(p, s)| {
            if !s || span < 1e-12 {
                bounds.midpoint()
            } else {
                bounds.lo + (p - min) / span * (bounds.hi - bounds.lo)
            }
        })
        .collect()
}

/// The paper's adaptive weighting system (Section IV / Eq. 4),
/// extracted verbatim from the seed master loop: every client's latest
/// `P_correct` is linearly rescaled into the configured band, the
/// reporting client takes its banded weight, and the full vector is
/// recorded in the weight trace. With no band configured — or fewer
/// than two clients, where there is nothing to normalize against — the
/// update rides unweighted, exactly as before.
#[derive(Clone, Copy, Debug, Default)]
pub struct FidelityWeighted;

impl Weighting for FidelityWeighted {
    fn name(&self) -> &'static str {
        "fidelity"
    }

    fn weight(&self, ctx: &WeightContext<'_>) -> WeightDecision {
        match ctx.bounds {
            Some(_) if ctx.n_clients < 2 => WeightDecision::unweighted(),
            Some(bounds) => {
                let ws = effective_weights(ctx.last_p_correct, ctx.reported, bounds);
                WeightDecision {
                    weight: ws[ctx.client],
                    ensemble_trace: Some(ws),
                }
            }
            None => WeightDecision::unweighted(),
        }
    }
}

/// Uniform weighting: every client's gradient counts the same
/// (`w = 1`), whatever its calibration reports. Rajamani et al.
/// (arXiv:2509.17982) find this systematically beats fidelity-weighted
/// VQE — the ablation [`fig_policies`] harness exists to test exactly
/// that claim on this codebase's fleets. Ignores the configured band
/// and records no weight trace.
///
/// [`fig_policies`]: ../../bench/index.html
#[derive(Clone, Copy, Debug, Default)]
pub struct EquiEnsemble;

impl Weighting for EquiEnsemble {
    fn name(&self) -> &'static str {
        "equi-ensemble"
    }

    fn weight(&self, _ctx: &WeightContext<'_>) -> WeightDecision {
        WeightDecision::unweighted()
    }
}

/// Staleness-attenuated weighting: `w = 1 / (1 + lambda * D)` where `D`
/// is the number of parameter updates applied since the task was
/// dispatched. A fresh result (`D = 0`) rides at full weight; results
/// delayed behind a congested queue contribute less, bounding the ASGD
/// error term that Eq. 12-14's convergence analysis charges to delay.
#[derive(Clone, Copy, Debug)]
pub struct StalenessDecay {
    lambda: f64,
}

impl StalenessDecay {
    /// Creates the policy with decay rate `lambda` per update of delay.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] if `lambda` is negative or
    /// non-finite.
    pub fn new(lambda: f64) -> Result<Self, EqcError> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(EqcError::InvalidConfig(format!(
                "staleness decay rate must be non-negative and finite, got {lambda}"
            )));
        }
        Ok(StalenessDecay { lambda })
    }

    /// The configured decay rate.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Default for StalenessDecay {
    /// `lambda = 0.5`: a result one update stale contributes 2/3 of a
    /// fresh one.
    fn default() -> Self {
        StalenessDecay { lambda: 0.5 }
    }
}

impl Weighting for StalenessDecay {
    fn name(&self) -> &'static str {
        "staleness-decay"
    }

    fn weight(&self, ctx: &WeightContext<'_>) -> WeightDecision {
        WeightDecision {
            weight: 1.0 / (1.0 + self.lambda * ctx.staleness as f64),
            ensemble_trace: None,
        }
    }
}

/// Multiplicative composition of two weighting policies: the applied
/// weight is the product of both parts' weights.
///
/// The canonical instance is `Composed(FidelityWeighted,
/// StalenessDecay::default())` — the paper's Eq. 2/4 band rescale
/// *attenuated* by ASGD delay, the cell the ROADMAP's "weighting ×
/// staleness composition" item called for (and the `fig_policies` grid
/// now covers). Each part sees the full [`WeightContext`], so any pair
/// composes; the recorded weight trace comes from the first part that
/// produces one (for the canonical pair: the fidelity band vector —
/// the per-result staleness factor is a scalar, not a per-client
/// ensemble quantity).
#[derive(Clone, Copy, Debug, Default)]
pub struct Composed<A, B>(pub A, pub B);

impl<A: Weighting, B: Weighting> Weighting for Composed<A, B> {
    fn name(&self) -> &'static str {
        "composed"
    }

    fn label(&self) -> String {
        format!("{}*{}", self.0.label(), self.1.label())
    }

    fn weight(&self, ctx: &WeightContext<'_>) -> WeightDecision {
        let a = self.0.weight(ctx);
        let b = self.1.weight(ctx);
        WeightDecision {
            weight: a.weight * b.weight,
            ensemble_trace: a.ensemble_trace.or(b.ensemble_trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        client: usize,
        last_p: &'a [f64],
        reported: &'a [bool],
        bounds: Option<WeightBounds>,
        staleness: u64,
    ) -> WeightContext<'a> {
        WeightContext {
            client,
            n_clients: last_p.len(),
            last_p_correct: last_p,
            reported,
            bounds,
            staleness,
        }
    }

    #[test]
    fn fidelity_matches_the_seed_semantics() {
        let bounds = WeightBounds::default_band();
        // No band -> unweighted, no trace.
        let d = FidelityWeighted.weight(&ctx(0, &[0.9, 0.4], &[true, true], None, 0));
        assert_eq!(d, WeightDecision::unweighted());
        // Single client -> weighting inert even with a band.
        let d = FidelityWeighted.weight(&ctx(0, &[0.9], &[true], Some(bounds), 0));
        assert_eq!(d, WeightDecision::unweighted());
        // Two reported clients -> banded weights plus a trace sample.
        let d = FidelityWeighted.weight(&ctx(0, &[0.9, 0.4], &[true, true], Some(bounds), 3));
        assert_eq!(d.weight, 1.5, "best device takes the band top");
        assert_eq!(d.ensemble_trace, Some(vec![1.5, 0.5]));
    }

    #[test]
    fn fidelity_rides_midpoint_until_two_reports() {
        let bounds = WeightBounds::default_band();
        let d = FidelityWeighted.weight(&ctx(
            1,
            &[0.9, 1.0, 0.4],
            &[true, false, false],
            Some(bounds),
            0,
        ));
        assert_eq!(d.weight, 1.0);
        assert_eq!(d.ensemble_trace, Some(vec![1.0, 1.0, 1.0]));
    }

    #[test]
    fn equi_ensemble_is_uniform_whatever_the_fleet_reports() {
        let bounds = WeightBounds::new(0.25, 1.75).unwrap();
        for client in 0..3 {
            let d =
                EquiEnsemble.weight(&ctx(client, &[0.99, 0.2, 0.6], &[true; 3], Some(bounds), 4));
            assert_eq!(d, WeightDecision::unweighted());
        }
    }

    #[test]
    fn composed_multiplies_and_keeps_the_band_trace() {
        let bounds = WeightBounds::default_band();
        let policy = Composed(FidelityWeighted, StalenessDecay::new(0.5).unwrap());
        assert_eq!(policy.name(), "composed");
        assert_eq!(policy.label(), "fidelity*staleness-decay");
        // Fresh result: pure band weight.
        let fresh = policy.weight(&ctx(0, &[0.9, 0.4], &[true, true], Some(bounds), 0));
        assert_eq!(fresh.weight, 1.5);
        assert_eq!(fresh.ensemble_trace, Some(vec![1.5, 0.5]));
        // Two updates stale: band weight * 1/(1 + 0.5*2).
        let stale = policy.weight(&ctx(0, &[0.9, 0.4], &[true, true], Some(bounds), 2));
        assert!((stale.weight - 1.5 / 2.0).abs() < 1e-12);
        assert_eq!(
            stale.ensemble_trace,
            Some(vec![1.5, 0.5]),
            "trace records the band component"
        );
        // No band configured: composition degrades to pure decay.
        let decay_only = policy.weight(&ctx(0, &[0.9, 0.4], &[true, true], None, 2));
        assert!((decay_only.weight - 0.5).abs() < 1e-12);
        assert_eq!(decay_only.ensemble_trace, None);
    }

    #[test]
    fn staleness_decay_attenuates_delayed_updates() {
        let policy = StalenessDecay::new(0.5).unwrap();
        let w = |s| {
            policy
                .weight(&ctx(0, &[1.0, 1.0], &[true; 2], None, s))
                .weight
        };
        assert_eq!(w(0), 1.0, "fresh result rides at full weight");
        assert!((w(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!(w(8) < w(2), "more delay, less weight");
        assert!(StalenessDecay::new(-0.1).is_err());
        assert!(StalenessDecay::new(f64::NAN).is_err());
        assert_eq!(StalenessDecay::default().lambda(), 0.5);
    }
}
