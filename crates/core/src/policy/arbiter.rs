//! Tenant → capacity arbitration policies for the multi-tenant fleet.
//!
//! The paper treats every NISQ device as a queue-contended shared
//! resource (Section I); [`FleetRuntime`](crate::fleet::FleetRuntime)
//! lifts that to the fleet level: several training sessions (tenants)
//! borrow capacity from one shared device pool, and a [`TenantArbiter`]
//! decides, at every grant round, how many concurrent tasks each tenant
//! may keep in flight. The fleet owns all mutable bookkeeping (in-flight
//! counts, ready queues, starvation counters) and hands the arbiter an
//! immutable [`ArbiterContext`] snapshot — the same stateless-policy
//! contract as [`Scheduler`](crate::policy::Scheduler).
//!
//! Three arbiters ship:
//!
//! * [`Unshared`] — capacity sharing *disabled*: every tenant proceeds
//!   as if it owned the fleet alone. A tenant's trajectory is then
//!   byte-identical to its standalone [`Ensemble`](crate::Ensemble)
//!   run regardless of co-tenants (pinned by tests).
//! * [`FairShare`] — weighted round-robin: slots split proportionally
//!   to each tenant's configured weight, with a rotating one-slot
//!   guarantee so no tenant with pending work ever starves.
//! * [`PriorityArbiter`] — strict priority: higher-priority tenants
//!   take all the capacity they can use; lower priorities get the
//!   leftovers (and their starvation shows up in
//!   [`TenantTelemetry`](crate::report::TenantTelemetry)).
//! * [`EarliestDeadlineFirst`] — deadline/SLO-aware: tenants are served
//!   in ascending slack (deadline budget minus elapsed virtual hours),
//!   and the arbiter degrades to [`FairShare`] the moment the deadline
//!   set becomes infeasible, so a blown SLO is time-sliced (and visible
//!   as starvation telemetry) instead of cascading through every later
//!   deadline.

use std::fmt;

/// One tenant's load snapshot inside an [`ArbiterContext`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantLoad {
    /// Tenant index within the current fleet run.
    pub tenant: usize,
    /// The tenant's configured fair-share weight (positive, finite).
    pub weight: f64,
    /// The tenant's configured priority (higher wins under
    /// [`PriorityArbiter`]).
    pub priority: i64,
    /// Tasks the tenant currently has in flight (dispatched, not yet
    /// absorbed).
    pub in_flight: usize,
    /// Idle clients waiting for a capacity grant to dispatch.
    pub ready: usize,
    /// Whether the tenant's training goal is already met.
    pub complete: bool,
    /// Epochs still owed on the tenant's budget.
    pub remaining_epochs: usize,
    /// Virtual hours elapsed on the tenant's own clock.
    pub elapsed_h: f64,
    /// The tenant's deadline budget in virtual hours from its arrival;
    /// `None` means no SLO.
    pub deadline_h: Option<f64>,
}

impl TenantLoad {
    /// Total capacity the tenant could use right now.
    pub fn demand(&self) -> usize {
        self.in_flight + self.ready
    }

    /// Whether the tenant wants capacity this round.
    pub fn wants_capacity(&self) -> bool {
        !self.complete && self.demand() > 0
    }

    /// Virtual hours left before the tenant's deadline; infinite when
    /// no SLO was configured, negative once the budget is blown.
    pub fn slack_h(&self) -> f64 {
        self.deadline_h
            .map_or(f64::INFINITY, |d| d - self.elapsed_h)
    }

    /// Whether the tenant still owes epochs but has exhausted its
    /// deadline budget — the infeasibility signal
    /// [`EarliestDeadlineFirst`] degrades on.
    pub fn past_deadline(&self) -> bool {
        self.remaining_epochs > 0 && self.slack_h() <= 0.0
    }
}

/// Everything a [`TenantArbiter`] may consult for one grant round.
#[derive(Clone, Debug)]
pub struct ArbiterContext<'a> {
    /// One load snapshot per tenant, indexed by tenant id.
    pub loads: &'a [TenantLoad],
    /// Total concurrent-task slots the fleet offers (its device count).
    pub total_slots: usize,
    /// Monotone grant-round counter — the rotation source for
    /// round-robin tie-breaking (policies stay stateless).
    pub round: u64,
}

/// Decides each tenant's concurrent-task capacity for one grant round.
///
/// Implementations must be deterministic pure functions of the context
/// (see [`Scheduler`](crate::policy::Scheduler) for why): the pooled
/// fleet substrate replays the discrete-event grant sequence exactly.
pub trait TenantArbiter: fmt::Debug + Send + Sync {
    /// Policy name as reported in
    /// [`FleetTelemetry`](crate::report::FleetTelemetry).
    fn name(&self) -> &'static str;

    /// Returns the per-tenant capacity caps for this round, indexed by
    /// tenant id. A cap above a tenant's demand is harmless (the fleet
    /// dispatches at most `demand` tasks); a missing entry reads as 0.
    fn allocate(&self, ctx: &ArbiterContext<'_>) -> Vec<usize>;
}

/// Capacity sharing disabled: every tenant is granted its full demand,
/// as if it owned the fleet alone.
///
/// Tenants never constrain each other, so a tenant's deterministic
/// trajectory is byte-identical to its standalone
/// [`Ensemble::train`](crate::Ensemble::train) run regardless of
/// co-tenants — the isolation oracle the fleet tests pin. The cost is
/// oversubscription: total in-flight tasks may exceed the device count.
#[derive(Clone, Copy, Debug, Default)]
pub struct Unshared;

impl TenantArbiter for Unshared {
    fn name(&self) -> &'static str {
        "unshared"
    }

    fn allocate(&self, ctx: &ArbiterContext<'_>) -> Vec<usize> {
        ctx.loads
            .iter()
            .map(|l| if l.complete { 0 } else { l.demand() })
            .collect()
    }
}

/// Weighted round-robin capacity sharing.
///
/// Every demanding tenant first receives one slot (rotating by round
/// when there are more tenants than slots, so scarcity is time-sliced
/// rather than starved); the remaining slots are apportioned by largest
/// remainder proportionally to the tenants' weights, capped at demand,
/// with slots freed by a binding demand cap respilling to the still-open
/// tenants. The properties the proptests pin: never over-allocates,
/// never exceeds demand, grants every demanding tenant at least one slot
/// whenever slots suffice, weakly favors heavier weights, and converges
/// to the configured weight ratios over rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct FairShare;

impl TenantArbiter for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn allocate(&self, ctx: &ArbiterContext<'_>) -> Vec<usize> {
        let mut caps = vec![0usize; ctx.loads.len()];
        let demanding: Vec<usize> = (0..ctx.loads.len())
            .filter(|&t| ctx.loads[t].wants_capacity())
            .collect();
        if demanding.is_empty() || ctx.total_slots == 0 {
            return caps;
        }
        let k = demanding.len();
        let start = (ctx.round % k as u64) as usize;
        let mut remaining = ctx.total_slots;

        // Rotating one-slot guarantee: with fewer slots than tenants the
        // rotation time-slices, so nobody starves permanently.
        for i in 0..k {
            if remaining == 0 {
                break;
            }
            caps[demanding[(start + i) % k]] = 1;
            remaining -= 1;
        }

        // Largest-remainder apportionment of the rest by weight, capped
        // at demand. Each pass grants at least one slot while any tenant
        // has headroom, so the loop terminates.
        while remaining > 0 {
            let open: Vec<usize> = demanding
                .iter()
                .copied()
                .filter(|&t| caps[t] < ctx.loads[t].demand())
                .collect();
            if open.is_empty() {
                break;
            }
            let rotation = (ctx.round % open.len() as u64) as usize;
            let total_w: f64 = open.iter().map(|&t| ctx.loads[t].weight).sum();
            let pool = remaining;
            // Floors first.
            let mut fracs: Vec<(f64, usize, usize)> = Vec::with_capacity(open.len());
            for (i, &t) in open.iter().enumerate() {
                let ideal = pool as f64 * ctx.loads[t].weight / total_w;
                let headroom = ctx.loads[t].demand() - caps[t];
                let grant = (ideal.floor() as usize).min(headroom).min(remaining);
                caps[t] += grant;
                remaining -= grant;
                // Rotated rank so leftover ties cycle across rounds.
                fracs.push((ideal.fract(), (i + open.len() - rotation) % open.len(), t));
            }
            // Leftovers by descending fractional part, rotated ties.
            fracs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            for &(_, _, t) in &fracs {
                if remaining == 0 {
                    break;
                }
                if caps[t] < ctx.loads[t].demand() {
                    caps[t] += 1;
                    remaining -= 1;
                }
            }
        }
        caps
    }
}

/// Strict priority: tenants are served in descending priority order
/// (ties toward the lower tenant id), each taking as much capacity as it
/// can use before the next is considered.
///
/// Deliberately starvation-prone — a saturated high-priority tenant
/// holds the whole fleet until it completes. The fleet's per-tenant
/// starvation accounting ([`TenantTelemetry::starved_rounds`]) makes
/// that visible; the `fig_tenants` harness ablates it against
/// [`FairShare`].
///
/// [`TenantTelemetry::starved_rounds`]: crate::report::TenantTelemetry::starved_rounds
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityArbiter;

impl TenantArbiter for PriorityArbiter {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn allocate(&self, ctx: &ArbiterContext<'_>) -> Vec<usize> {
        let mut caps = vec![0usize; ctx.loads.len()];
        let mut order: Vec<usize> = (0..ctx.loads.len())
            .filter(|&t| ctx.loads[t].wants_capacity())
            .collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(ctx.loads[t].priority), t));
        let mut remaining = ctx.total_slots;
        for t in order {
            let grant = ctx.loads[t].demand().min(remaining);
            caps[t] = grant;
            remaining -= grant;
            if remaining == 0 {
                break;
            }
        }
        caps
    }
}

/// Deadline-aware capacity sharing: earliest deadline first, degrading
/// to [`FairShare`] when the deadline set is infeasible.
///
/// Each tenant's urgency is its *slack* — the deadline budget from
/// [`TenantConfig::deadline_h`](crate::config::TenantConfig::deadline_h)
/// minus the virtual hours already elapsed on the tenant's own clock.
/// Demanding tenants are served strictly in ascending slack (no-SLO
/// tenants rank last with infinite slack; ties toward the lower tenant
/// id), each taking as much capacity as it can use — classic EDF, which
/// meets every deadline whenever any non-migrating policy can.
///
/// The moment any demanding tenant has blown its budget
/// ([`TenantLoad::past_deadline`]), strict EDF would let the doomed
/// tenant drag every later deadline down with it; instead the round is
/// delegated verbatim to [`FairShare`], whose rotating guarantee bounds
/// starvation and whose telemetry
/// ([`TenantTelemetry::starved_rounds`]) is the safety signal that the
/// degradation happened.
///
/// [`TenantTelemetry::starved_rounds`]: crate::report::TenantTelemetry::starved_rounds
#[derive(Clone, Copy, Debug, Default)]
pub struct EarliestDeadlineFirst;

impl TenantArbiter for EarliestDeadlineFirst {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn allocate(&self, ctx: &ArbiterContext<'_>) -> Vec<usize> {
        let mut caps = vec![0usize; ctx.loads.len()];
        let mut order: Vec<usize> = (0..ctx.loads.len())
            .filter(|&t| ctx.loads[t].wants_capacity())
            .collect();
        if order.is_empty() || ctx.total_slots == 0 {
            return caps;
        }
        if order.iter().any(|&t| ctx.loads[t].past_deadline()) {
            return FairShare.allocate(ctx);
        }
        order.sort_by(|&a, &b| {
            ctx.loads[a]
                .slack_h()
                .total_cmp(&ctx.loads[b].slack_h())
                .then(a.cmp(&b))
        });
        let mut remaining = ctx.total_slots;
        for t in order {
            if remaining == 0 {
                break;
            }
            let grant = ctx.loads[t].demand().min(remaining);
            caps[t] = grant;
            remaining -= grant;
        }
        caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(tenant: usize, weight: f64, priority: i64, demand: usize) -> TenantLoad {
        TenantLoad {
            tenant,
            weight,
            priority,
            in_flight: 0,
            ready: demand,
            complete: false,
            remaining_epochs: if demand > 0 { 1 } else { 0 },
            elapsed_h: 0.0,
            deadline_h: None,
        }
    }

    fn slo(tenant: usize, demand: usize, elapsed_h: f64, deadline_h: f64) -> TenantLoad {
        TenantLoad {
            elapsed_h,
            deadline_h: Some(deadline_h),
            ..load(tenant, 1.0, 0, demand)
        }
    }

    fn ctx(loads: &[TenantLoad], total_slots: usize, round: u64) -> ArbiterContext<'_> {
        ArbiterContext {
            loads,
            total_slots,
            round,
        }
    }

    #[test]
    fn unshared_grants_full_demand_to_everyone() {
        let loads = [load(0, 1.0, 0, 5), load(1, 1.0, 0, 3)];
        assert_eq!(Unshared.allocate(&ctx(&loads, 4, 0)), vec![5, 3]);
        let mut done = loads;
        done[1].complete = true;
        assert_eq!(Unshared.allocate(&ctx(&done, 4, 0)), vec![5, 0]);
    }

    #[test]
    fn fair_share_splits_by_weight_and_never_starves() {
        // Weights 3:1 over 8 slots: 1+1 guaranteed, 6 split 4.5/1.5.
        let loads = [load(0, 3.0, 0, 8), load(1, 1.0, 0, 8)];
        let caps = FairShare.allocate(&ctx(&loads, 8, 0));
        assert_eq!(caps.iter().sum::<usize>(), 8, "work-conserving");
        assert!(caps[0] > caps[1], "heavier weight takes more: {caps:?}");
        assert!(caps[1] >= 1, "light tenant still served: {caps:?}");
    }

    #[test]
    fn fair_share_caps_at_demand_and_respills() {
        let loads = [load(0, 1.0, 0, 2), load(1, 1.0, 0, 10)];
        let caps = FairShare.allocate(&ctx(&loads, 8, 0));
        assert_eq!(caps[0], 2, "never beyond demand");
        assert_eq!(caps[1], 6, "freed slots respill");
    }

    #[test]
    fn fair_share_rotates_scarce_slots() {
        // Three tenants, one slot: the guarantee must rotate by round.
        let loads = [load(0, 1.0, 0, 4), load(1, 1.0, 0, 4), load(2, 1.0, 0, 4)];
        let mut granted = [0usize; 3];
        for round in 0..3 {
            let caps = FairShare.allocate(&ctx(&loads, 1, round));
            assert_eq!(caps.iter().sum::<usize>(), 1);
            for (t, &c) in caps.iter().enumerate() {
                granted[t] += c;
            }
        }
        assert_eq!(granted, [1, 1, 1], "one slot each over a full rotation");
    }

    #[test]
    fn fair_share_ignores_complete_and_idle_tenants() {
        let mut loads = [load(0, 1.0, 0, 4), load(1, 1.0, 0, 0), load(2, 1.0, 0, 4)];
        loads[2].complete = true;
        let caps = FairShare.allocate(&ctx(&loads, 8, 0));
        assert_eq!(caps[1], 0, "no demand, no slots");
        assert_eq!(caps[2], 0, "complete tenants hold nothing");
        assert_eq!(caps[0], 4);
    }

    #[test]
    fn priority_serves_strictly_in_order() {
        let loads = [load(0, 1.0, 0, 4), load(1, 1.0, 5, 3), load(2, 1.0, 5, 4)];
        let caps = PriorityArbiter.allocate(&ctx(&loads, 6, 0));
        // Priority 5 first (ties toward lower id), tenant 0 gets scraps.
        assert_eq!(caps, vec![0, 3, 3]);
    }

    #[test]
    fn edf_serves_tightest_slack_first() {
        // Slacks: t0 = 9, t1 = 2, t2 = inf (no SLO). Six slots cover
        // t1 fully, then t0, and t2 gets the scraps.
        let loads = [
            slo(0, 4, 1.0, 10.0),
            slo(1, 3, 8.0, 10.0),
            load(2, 1.0, 0, 4),
        ];
        let caps = EarliestDeadlineFirst.allocate(&ctx(&loads, 6, 0));
        assert_eq!(caps, vec![3, 3, 0]);
    }

    #[test]
    fn edf_grants_full_demand_under_ample_capacity() {
        let loads = [slo(0, 2, 0.0, 1.0), slo(1, 3, 0.0, 2.0)];
        assert_eq!(
            EarliestDeadlineFirst.allocate(&ctx(&loads, 8, 0)),
            vec![2, 3]
        );
    }

    #[test]
    fn edf_degrades_to_fair_share_when_infeasible() {
        // Tenant 1 blew its budget (elapsed 5 h of a 2 h deadline) with
        // epochs still owed: the whole round must match FairShare
        // exactly, rotation included.
        let loads = [slo(0, 4, 0.0, 10.0), slo(1, 4, 5.0, 2.0)];
        for round in 0..4 {
            assert_eq!(
                EarliestDeadlineFirst.allocate(&ctx(&loads, 3, round)),
                FairShare.allocate(&ctx(&loads, 3, round)),
                "infeasible round {round} must delegate to fair-share"
            );
        }
        assert!(loads[1].past_deadline());
        assert!(!loads[0].past_deadline());
    }

    #[test]
    fn slack_is_infinite_without_an_slo() {
        let l = load(0, 1.0, 0, 2);
        assert_eq!(l.slack_h(), f64::INFINITY);
        assert!(!l.past_deadline());
        assert!(slo(0, 2, 3.0, 3.0).past_deadline(), "zero slack is blown");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Unshared.name(), "unshared");
        assert_eq!(FairShare.name(), "fair-share");
        assert_eq!(PriorityArbiter.name(), "priority");
        assert_eq!(EarliestDeadlineFirst.name(), "edf");
    }
}
