//! Deprecated trainer entry points, kept for one release as thin shims
//! over the [`Ensemble`](crate::Ensemble) session API, plus the
//! [`ideal_backend`] helper shared with the new API.
//!
//! The four historical entry points — [`EqcTrainer`],
//! [`SingleDeviceTrainer`], [`SyncEnsembleTrainer`] and [`train_ideal`]
//! (with [`crate::threaded::train_threaded`]) — each re-implemented the
//! master loop. They now delegate to the one extracted core:
//!
//! | Deprecated | Replacement |
//! |---|---|
//! | `EqcTrainer::train` | [`DiscreteEventExecutor`] via [`Ensemble::train`](crate::Ensemble::train) |
//! | `SingleDeviceTrainer::train` | [`SequentialExecutor`] on one device |
//! | `SyncEnsembleTrainer::train` | [`SequentialExecutor`] on the fleet |
//! | `train_ideal` | [`EnsembleBuilder::ideal_device`](crate::EnsembleBuilder::ideal_device) |
//!
//! Unlike their panicking ancestors, the shims return
//! `Result<TrainingReport, EqcError>`.

use crate::client::ClientNode;
use crate::config::EqcConfig;
use crate::ensemble::EnsembleSession;
use crate::error::EqcError;
use crate::executor::{DiscreteEventExecutor, Executor, SequentialExecutor};
use crate::report::TrainingReport;
use qdevice::{Calibration, DriftModel, QpuBackend, QueueModel};
use transpile::Topology;
use vqa::VqaProblem;

/// A noiseless, zero-queue backend: the paper's ideal simulator baseline.
///
/// Fully connected topology (no routing), perfect gates, no drift, no
/// queue wait. Shot noise remains — the ideal baseline in the paper also
/// samples 8192 shots.
pub fn ideal_backend(n_qubits: usize, seed: u64) -> QpuBackend {
    let cal = Calibration::uniform(n_qubits, f64::INFINITY, f64::INFINITY, 0.0, 0.0, 0.0);
    let queue = QueueModel {
        overhead_s: 0.0,
        mean_wait_s: 0.0,
        diurnal_amplitude: 0.0,
        phase_hours: 0.0,
        period_hours: 24.0,
        reset_time_us: 0.0,
    };
    QpuBackend::new(
        "ideal",
        Topology::fully_connected(n_qubits.max(2)),
        cal,
        DriftModel::none(),
        queue,
        24.0,
        seed,
    )
    .with_downtime_hours(0.0)
}

/// The historical EQC ensemble trainer.
#[deprecated(
    since = "0.2.0",
    note = "use Ensemble::builder().…build()?.train(&problem) — the DiscreteEventExecutor"
)]
#[derive(Clone, Copy, Debug)]
pub struct EqcTrainer {
    config: EqcConfig,
}

#[allow(deprecated)]
impl EqcTrainer {
    /// Creates a trainer with the given configuration. The configuration
    /// is validated when training starts, not here.
    pub fn new(config: EqcConfig) -> Self {
        EqcTrainer { config }
    }

    /// Trains `problem` over the ensemble, consuming the clients.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] / [`EqcError::EmptyEnsemble`] instead
    /// of the panics of the pre-0.2 API.
    pub fn train(
        &self,
        problem: &dyn VqaProblem,
        clients: Vec<ClientNode>,
    ) -> Result<TrainingReport, EqcError> {
        let mut session = EnsembleSession::from_clients(problem, self.config, clients)?;
        DiscreteEventExecutor::new().run(&mut session)
    }
}

/// The historical single-machine baseline trainer.
#[deprecated(
    since = "0.2.0",
    note = "use Ensemble::builder().…build()?.train_with(&SequentialExecutor::new(), &problem)"
)]
#[derive(Clone, Copy, Debug)]
pub struct SingleDeviceTrainer {
    config: EqcConfig,
}

#[allow(deprecated)]
impl SingleDeviceTrainer {
    /// Creates a trainer with the given configuration. The configuration
    /// is validated when training starts, not here.
    pub fn new(config: EqcConfig) -> Self {
        SingleDeviceTrainer { config }
    }

    /// Trains `problem` on a single client.
    ///
    /// Behavioral notes vs the pre-0.2 implementation: with
    /// `max_virtual_hours` set, the update that crosses the cap is now
    /// *discarded* (the unified rule all executors share, matching the
    /// old ensemble trainers) instead of applied, so a capped run may
    /// report one fewer update and no trailing partial-epoch record.
    /// `weight_bounds` remains inert for a single client (weighting
    /// normalizes devices against each other).
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] on a bad configuration.
    pub fn train(
        &self,
        problem: &dyn VqaProblem,
        client: ClientNode,
    ) -> Result<TrainingReport, EqcError> {
        let mut session = EnsembleSession::from_clients(problem, self.config, vec![client])?;
        SequentialExecutor::new().run(&mut session)
    }
}

/// The historical barrier-synchronized ensemble trainer (the staleness
/// ablation).
#[deprecated(
    since = "0.2.0",
    note = "use Ensemble::builder().…build()?.train_with(&SequentialExecutor::new(), &problem)"
)]
#[derive(Clone, Copy, Debug)]
pub struct SyncEnsembleTrainer {
    config: EqcConfig,
}

#[allow(deprecated)]
impl SyncEnsembleTrainer {
    /// Creates a trainer with the given configuration. The configuration
    /// is validated when training starts, not here.
    pub fn new(config: EqcConfig) -> Self {
        SyncEnsembleTrainer { config }
    }

    /// Trains `problem` with barrier-synchronized parameter updates.
    ///
    /// Behavioral note vs the pre-0.2 implementation: with
    /// `max_virtual_hours` set, the update that crosses the cap is now
    /// *discarded* (the unified rule all executors share) instead of
    /// applied, so a capped run may report one fewer update and no
    /// trailing partial-epoch record.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] / [`EqcError::EmptyEnsemble`] instead
    /// of the panics of the pre-0.2 API.
    pub fn train(
        &self,
        problem: &dyn VqaProblem,
        clients: Vec<ClientNode>,
    ) -> Result<TrainingReport, EqcError> {
        let mut session = EnsembleSession::from_clients(problem, self.config, clients)?;
        SequentialExecutor::new().run(&mut session)
    }
}

/// Trains the ideal-simulator baseline (single noiseless zero-latency
/// device).
///
/// # Errors
///
/// [`EqcError::InvalidConfig`] on a bad configuration.
#[deprecated(
    since = "0.2.0",
    note = "use Ensemble::builder().ideal_device().config(cfg).build()?.train_with(&SequentialExecutor::new(), &problem)"
)]
pub fn train_ideal(
    problem: &dyn VqaProblem,
    config: EqcConfig,
) -> Result<TrainingReport, EqcError> {
    let backend = ideal_backend(problem.num_qubits(), config.seed ^ 0x5eed);
    let client = ClientNode::new(0, backend, problem).map_err(|source| EqcError::Transpile {
        device: "ideal".into(),
        source,
    })?;
    let mut session = EnsembleSession::from_clients(problem, config, vec![client])?;
    SequentialExecutor::new().run(&mut session)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::ensemble::Ensemble;
    use crate::executor::ThreadedExecutor;
    use crate::weighting::WeightBounds;
    use qdevice::catalog;
    use vqa::{QaoaProblem, VqeProblem};

    /// Low-noise catalog backends, as the pre-0.2 test suite used.
    fn quiet_backend(name: &str, seed: u64) -> QpuBackend {
        let spec = catalog::by_name(name).unwrap();
        let mut cal = spec.calibration();
        cal.degrade(0.05, 1.0);
        QpuBackend::new(
            &spec.name,
            spec.topology(),
            cal,
            DriftModel::none(),
            QueueModel::light(2.0),
            24.0,
            seed,
        )
    }

    fn quiet_ensemble(names: &[&str], config: EqcConfig) -> Ensemble {
        let mut b = Ensemble::builder().config(config);
        for (i, name) in names.iter().enumerate() {
            b = b.backend(quiet_backend(name, 100 + i as u64));
        }
        b.build().expect("valid ensemble")
    }

    fn quiet_clients(problem: &dyn VqaProblem, names: &[&str]) -> Vec<ClientNode> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| ClientNode::new(i, quiet_backend(n, 100 + i as u64), problem).unwrap())
            .collect()
    }

    #[test]
    fn ideal_trainer_converges_on_qaoa() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(40).with_shots(4096);
        let report = train_ideal(&problem, cfg).unwrap();
        assert_eq!(report.epochs, 40);
        assert_eq!(report.trainer, "ideal");
        // p=1 optimum is -0.75; expect to get near it.
        assert!(
            report.converged_loss(5) < -0.65,
            "converged {}",
            report.converged_loss(5)
        );
        assert!(report.history.last().unwrap().ideal_loss < report.history[0].ideal_loss);
    }

    #[test]
    fn eqc_trains_qaoa_across_ensemble() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(30).with_shots(2048);
        let report = quiet_ensemble(&["belem", "manila", "bogota"], cfg)
            .train(&problem)
            .unwrap();
        assert_eq!(report.epochs, 30);
        assert!(
            report.converged_loss(5) < -0.6,
            "converged {}",
            report.converged_loss(5)
        );
        for c in &report.clients {
            assert!(c.tasks_completed > 0, "{} idle", c.device);
        }
        assert!(report.total_hours > 0.0);
    }

    #[test]
    fn deprecated_shims_match_the_new_api() {
        // The shims must be *delegates*, not parallel implementations:
        // identical inputs produce identical reports.
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(6).with_shots(256);

        let via_shim = EqcTrainer::new(cfg)
            .train(&problem, quiet_clients(&problem, &["belem", "manila"]))
            .unwrap();
        let via_api = quiet_ensemble(&["belem", "manila"], cfg)
            .train(&problem)
            .unwrap();
        assert_eq!(via_shim.final_params, via_api.final_params);
        assert_eq!(via_shim.history, via_api.history);

        let single_shim = SingleDeviceTrainer::new(cfg)
            .train(&problem, quiet_clients(&problem, &["belem"]).pop().unwrap())
            .unwrap();
        let single_api = quiet_ensemble(&["belem"], cfg)
            .train_with(&SequentialExecutor::new(), &problem)
            .unwrap();
        assert_eq!(single_shim.final_params, single_api.final_params);
        assert_eq!(single_shim.history, single_api.history);

        let sync_shim = SyncEnsembleTrainer::new(cfg)
            .train(&problem, quiet_clients(&problem, &["belem", "manila"]))
            .unwrap();
        let sync_api = quiet_ensemble(&["belem", "manila"], cfg)
            .train_with(&SequentialExecutor::new(), &problem)
            .unwrap();
        assert_eq!(sync_shim.final_params, sync_api.final_params);
    }

    #[test]
    fn shims_reject_invalid_input_without_panicking() {
        let problem = QaoaProblem::maxcut_ring4();
        let bad = EqcConfig::paper_qaoa().with_epochs(0);
        assert!(matches!(
            EqcTrainer::new(bad).train(&problem, quiet_clients(&problem, &["belem"])),
            Err(EqcError::InvalidConfig(_))
        ));
        let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(64);
        assert_eq!(
            EqcTrainer::new(cfg)
                .train(&problem, Vec::new())
                .unwrap_err(),
            EqcError::EmptyEnsemble
        );
    }

    #[test]
    fn eqc_faster_than_single_device() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(8).with_shots(512);
        let ensemble = quiet_ensemble(&["belem", "manila", "bogota", "quito"], cfg)
            .train(&problem)
            .unwrap();
        let single = quiet_ensemble(&["belem"], cfg)
            .train_with(&SequentialExecutor::new(), &problem)
            .unwrap();
        assert!(
            ensemble.epochs_per_hour() > 1.5 * single.epochs_per_hour(),
            "ensemble {:.2} vs single {:.2} epochs/h",
            ensemble.epochs_per_hour(),
            single.epochs_per_hour()
        );
    }

    #[test]
    fn weighted_run_produces_traces_in_band() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa()
            .with_epochs(6)
            .with_shots(512)
            .with_weights(WeightBounds::new(0.5, 1.5).unwrap());
        let report = quiet_ensemble(&["belem", "x2", "bogota"], cfg)
            .train(&problem)
            .unwrap();
        assert!(!report.weight_trace.is_empty());
        for sample in &report.weight_trace {
            for &w in &sample.weights {
                assert!((0.5..=1.5).contains(&w), "weight {w} out of band");
            }
        }
    }

    #[test]
    fn vqe_gather_semantics_update_counts() {
        // VQE: 16 params x 3 groups; 2 epochs = 32 parameter updates from
        // 96 slice tasks.
        let problem = VqeProblem::heisenberg_4q();
        let cfg = EqcConfig::paper_vqe().with_epochs(2).with_shots(128);
        let report = quiet_ensemble(&["belem", "manila"], cfg)
            .train(&problem)
            .unwrap();
        assert_eq!(report.epochs, 2);
        assert_eq!(report.updates_applied, 32);
        let total_tasks: u64 = report.clients.iter().map(|c| c.tasks_completed).sum();
        assert!(total_tasks >= 96, "only {total_tasks} tasks ran");
    }

    #[test]
    fn staleness_is_tracked() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(10).with_shots(256);
        let report = quiet_ensemble(&["belem", "manila", "bogota", "quito"], cfg)
            .train(&problem)
            .unwrap();
        // With 4 async clients over 2 parameters, some updates must land
        // on parameters moved since dispatch.
        assert!(
            report.max_staleness >= 1,
            "staleness {}",
            report.max_staleness
        );
    }

    #[test]
    fn sync_trainer_converges_without_staleness() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(20).with_shots(1024);
        let report = quiet_ensemble(&["belem", "manila", "bogota"], cfg)
            .train_with(&SequentialExecutor::new(), &problem)
            .unwrap();
        assert_eq!(report.epochs, 20);
        assert_eq!(report.max_staleness, 0);
        assert!(
            report.converged_loss(5) < -0.55,
            "{}",
            report.converged_loss(5)
        );
    }

    #[test]
    fn async_beats_sync_on_heterogeneous_fleet() {
        // With a slow straggler in the ensemble, the async executor should
        // deliver clearly more epochs/hour than barrier-synchronized SGD.
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(8).with_shots(512);
        let mk = || {
            let spec = catalog::by_name("quito").unwrap();
            let slow = QpuBackend::new(
                "slowpoke",
                spec.topology(),
                spec.calibration(),
                DriftModel::none(),
                QueueModel::congested(400.0, 0.1, 0.0),
                24.0,
                9,
            );
            let mut b = Ensemble::builder().config(cfg);
            for (i, name) in ["belem", "manila", "bogota"].iter().enumerate() {
                b = b.backend(quiet_backend(name, 100 + i as u64));
            }
            b.backend(slow).build().expect("valid ensemble")
        };
        let sync = mk()
            .train_with(&SequentialExecutor::new(), &problem)
            .unwrap();
        let asyn = mk().train(&problem).unwrap();
        assert!(
            asyn.epochs_per_hour() > 1.5 * sync.epochs_per_hour(),
            "async {:.2} vs sync {:.2}",
            asyn.epochs_per_hour(),
            sync.epochs_per_hour()
        );
    }

    #[test]
    fn single_device_history_is_monotone_in_time() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(5).with_shots(256);
        let report = quiet_ensemble(&["manila"], cfg)
            .train_with(&SequentialExecutor::new(), &problem)
            .unwrap();
        for w in report.history.windows(2) {
            assert!(w[1].virtual_hours > w[0].virtual_hours);
        }
    }

    #[test]
    fn threaded_shim_delegates() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(4).with_shots(128);
        let report = crate::threaded::train_threaded(
            &problem,
            quiet_clients(&problem, &["belem", "manila"]),
            cfg,
        )
        .unwrap();
        assert_eq!(report.epochs, 4);
        assert!(report.trainer.starts_with("eqc-threaded"));
        let via_api = quiet_ensemble(&["belem", "manila"], cfg)
            .train_with(&ThreadedExecutor::new(), &problem)
            .unwrap();
        assert_eq!(via_api.epochs, 4);
    }
}
