//! The EQC master node (Algorithm 1) and baseline trainers.
//!
//! [`EqcTrainer`] drives an ensemble of [`ClientNode`]s with asynchronous
//! stochastic gradient descent over deterministic virtual time: a
//! discrete-event loop pops the earliest-finishing client, applies its
//! (weighted) gradient with the ASGD rule `theta <- theta - w * alpha * g`
//! (paper Eqs. 4/12), and immediately hands that client the next task in
//! the cyclic parameter schedule. Gradients computed against stale
//! parameters are applied as-is — exactly the bounded-staleness model of
//! the paper's convergence proof.
//!
//! [`SingleDeviceTrainer`] is the paper's per-machine baseline (ordinary
//! sequential SGD on one QPU), and [`ideal_backend`] builds the noiseless
//! zero-latency device behind the "Ideal Solution" curves.

use crate::client::{ClientNode, ClientTaskResult};
use crate::config::EqcConfig;
use crate::report::{ClientStats, EpochRecord, TrainingReport, WeightSample};
use crate::weighting::WeightBounds;
use qdevice::{Calibration, DriftModel, QpuBackend, QueueModel, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use transpile::Topology;
use vqa::{GradientTask, VqaProblem};

/// A noiseless, zero-queue backend: the paper's ideal simulator baseline.
///
/// Fully connected topology (no routing), perfect gates, no drift, no
/// queue wait. Shot noise remains — the ideal baseline in the paper also
/// samples 8192 shots.
pub fn ideal_backend(n_qubits: usize, seed: u64) -> QpuBackend {
    let cal = Calibration::uniform(n_qubits, f64::INFINITY, f64::INFINITY, 0.0, 0.0, 0.0);
    let queue = QueueModel {
        overhead_s: 0.0,
        mean_wait_s: 0.0,
        diurnal_amplitude: 0.0,
        phase_hours: 0.0,
        period_hours: 24.0,
        reset_time_us: 0.0,
    };
    QpuBackend::new(
        "ideal",
        Topology::fully_connected(n_qubits.max(2)),
        cal,
        DriftModel::none(),
        queue,
        24.0,
        seed,
    )
    .with_downtime_hours(0.0)
}

/// A completed task waiting in the event queue, ordered by completion
/// time (earliest first).
struct Event {
    completed: SimTime,
    client: usize,
    result: ClientTaskResult,
    /// Parameter-update counter at dispatch time (staleness tracking).
    dispatched_at_update: u64,
    /// Cycle index of the dispatched task (gather key component).
    cycle: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.completed == other.completed
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first, tie-break
        // on client id for determinism.
        other
            .completed
            .partial_cmp(&self.completed)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.client.cmp(&self.client))
    }
}

/// Accumulates the slice gradients of one (cycle, parameter) gather.
struct Gather {
    remaining: usize,
    weighted_sum: f64,
}

/// The EQC ensemble trainer.
#[derive(Clone, Copy, Debug)]
pub struct EqcTrainer {
    config: EqcConfig,
}

impl EqcTrainer {
    /// Creates a trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EqcConfig) -> Self {
        config.validate();
        EqcTrainer { config }
    }

    /// Trains `problem` over the ensemble, consuming the clients.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn train(&self, problem: &dyn VqaProblem, mut clients: Vec<ClientNode>) -> TrainingReport {
        assert!(!clients.is_empty(), "EQC needs at least one client");
        let cfg = self.config;
        let n_clients = clients.len();
        let tasks = problem.tasks();
        let tasks_per_cycle = tasks.len();
        let params_per_cycle = problem.num_params();
        // How many slices each parameter contributes per cycle.
        let mut slices_per_param: HashMap<usize, usize> = HashMap::new();
        for t in &tasks {
            *slices_per_param.entry(t.param.index()).or_insert(0) += 1;
        }

        let mut theta = problem.initial_point(cfg.seed);
        let mut cursor = 0usize; // global task cursor; cycle = cursor / tasks_per_cycle
        let mut update_count = 0u64; // applied parameter updates
        let mut epochs_recorded = 0usize;
        let mut gathers: HashMap<(usize, usize), Gather> = HashMap::new();
        let mut queue: BinaryHeap<Event> = BinaryHeap::new();

        // Weighting state: last P_correct per client.
        let mut last_p: Vec<f64> = vec![1.0; n_clients];
        let mut p_seen: Vec<bool> = vec![false; n_clients];
        let mut weight_trace: Vec<WeightSample> = Vec::new();
        let mut p_sums: Vec<f64> = vec![0.0; n_clients];
        let mut w_sums: Vec<f64> = vec![0.0; n_clients];
        let mut w_counts: Vec<u64> = vec![0; n_clients];

        let mut history: Vec<EpochRecord> = Vec::new();
        let mut staleness_max = 0u64;
        let mut staleness_sum = 0u64;
        let mut staleness_n = 0u64;
        let mut now = SimTime::ZERO;

        let dispatch = |client_idx: usize,
                            clients: &mut Vec<ClientNode>,
                            cursor: &mut usize,
                            gathers: &mut HashMap<(usize, usize), Gather>,
                            queue: &mut BinaryHeap<Event>,
                            theta: &[f64],
                            submit: SimTime,
                            update_count: u64| {
            let cycle = *cursor / tasks_per_cycle;
            let task: GradientTask = tasks[*cursor % tasks_per_cycle];
            *cursor += 1;
            gathers
                .entry((cycle, task.param.index()))
                .or_insert_with(|| Gather {
                    remaining: slices_per_param[&task.param.index()],
                    weighted_sum: 0.0,
                });
            let result =
                clients[client_idx].run_task(problem, task, theta, cfg.shots, submit);
            queue.push(Event {
                completed: result.completed,
                client: client_idx,
                result,
                dispatched_at_update: update_count,
                cycle,
            });
        };

        // Prime every client with one task.
        for c in 0..n_clients {
            dispatch(
                c,
                &mut clients,
                &mut cursor,
                &mut gathers,
                &mut queue,
                &theta,
                SimTime::ZERO,
                update_count,
            );
        }

        while epochs_recorded < cfg.epochs {
            let ev = queue.pop().expect("clients always hold pending work");
            now = ev.completed;
            if let Some(cap) = cfg.max_virtual_hours {
                if now.as_hours() > cap {
                    break; // terminated, like the paper's 2-week cutoff
                }
            }

            // Update the weighting state with the client's fresh P_correct.
            last_p[ev.client] = ev.result.p_correct;
            p_seen[ev.client] = true;
            p_sums[ev.client] += ev.result.p_correct;

            let weights = match cfg.weight_bounds {
                Some(bounds) => {
                    let w = effective_weights(&last_p, &p_seen, bounds);
                    weight_trace.push(WeightSample {
                        virtual_hours: now.as_hours(),
                        weights: w.clone(),
                    });
                    w
                }
                None => vec![1.0; n_clients],
            };
            let w = weights[ev.client];
            w_sums[ev.client] += w;
            w_counts[ev.client] += 1;

            // Fold the weighted slice gradient into its gather.
            let key = (ev.cycle, ev.result.task.param.index());
            let done = {
                let g = gathers.get_mut(&key).expect("gather exists for dispatched task");
                g.weighted_sum += w * ev.result.gradient;
                g.remaining -= 1;
                g.remaining == 0
            };
            if done {
                let g = gathers.remove(&key).expect("checked above");
                let mut step = cfg.learning_rate * g.weighted_sum;
                if let Some(clip) = cfg.gradient_clip {
                    step = step.clamp(-clip, clip);
                }
                theta[ev.result.task.param.index()] -= step;
                update_count += 1;

                let staleness = update_count.saturating_sub(ev.dispatched_at_update + 1);
                staleness_max = staleness_max.max(staleness);
                staleness_sum += staleness;
                staleness_n += 1;

                // Epoch boundary: every parameter updated once more.
                if update_count as usize / params_per_cycle > epochs_recorded {
                    epochs_recorded = update_count as usize / params_per_cycle;
                    history.push(EpochRecord {
                        epoch: epochs_recorded,
                        virtual_hours: now.as_hours(),
                        ideal_loss: problem.ideal_loss(&theta),
                    });
                }
            }

            if epochs_recorded >= cfg.epochs {
                break;
            }
            // Hand the finished client its next task (Algorithm 1's
            // "sends a new parameter to differentiate at an idle client").
            dispatch(
                ev.client,
                &mut clients,
                &mut cursor,
                &mut gathers,
                &mut queue,
                &theta,
                now,
                update_count,
            );
        }

        let final_loss = problem.ideal_loss(&theta);
        let client_stats = clients
            .iter()
            .enumerate()
            .map(|(i, c)| ClientStats {
                device: c.device_name(),
                tasks_completed: c.tasks_completed(),
                circuits_run: c.circuits_run(),
                mean_p_correct: if c.tasks_completed() > 0 {
                    p_sums[i] / c.tasks_completed() as f64
                } else {
                    0.0
                },
                mean_weight: if w_counts[i] > 0 {
                    w_sums[i] / w_counts[i] as f64
                } else {
                    1.0
                },
                utilization: c.backend().utilization(now),
            })
            .collect();
        TrainingReport {
            problem: problem.name(),
            trainer: format!("eqc[{n_clients}]"),
            epochs: epochs_recorded,
            history,
            final_params: theta,
            final_loss,
            reference_minimum: problem.reference_minimum(),
            total_hours: now.as_hours(),
            clients: client_stats,
            weight_trace,
            max_staleness: staleness_max as usize,
            mean_staleness: if staleness_n > 0 {
                staleness_sum as f64 / staleness_n as f64
            } else {
                0.0
            },
        }
    }
}

/// Weights from the latest `P_correct` per client: clients that have not
/// reported yet ride at the band midpoint so one fast device cannot
/// dominate the normalization early. Shared with the threaded executor.
pub(crate) fn effective_weights(last_p: &[f64], seen: &[bool], bounds: WeightBounds) -> Vec<f64> {
    let reported: Vec<f64> = last_p
        .iter()
        .zip(seen)
        .filter(|(_, s)| **s)
        .map(|(p, _)| *p)
        .collect();
    if reported.len() < 2 {
        return vec![bounds.midpoint(); last_p.len()];
    }
    let min = reported.iter().copied().fold(f64::INFINITY, f64::min);
    let max = reported.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    last_p
        .iter()
        .zip(seen)
        .map(|(p, s)| {
            if !s || span < 1e-12 {
                bounds.midpoint()
            } else {
                bounds.lo + (p - min) / span * (bounds.hi - bounds.lo)
            }
        })
        .collect()
}

/// The paper's single-machine baseline: ordinary sequential SGD on one
/// device — submit every slice of a parameter, wait, update, move on.
#[derive(Clone, Copy, Debug)]
pub struct SingleDeviceTrainer {
    config: EqcConfig,
}

impl SingleDeviceTrainer {
    /// Creates a trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EqcConfig) -> Self {
        config.validate();
        SingleDeviceTrainer { config }
    }

    /// Trains `problem` on a single client.
    pub fn train(&self, problem: &dyn VqaProblem, mut client: ClientNode) -> TrainingReport {
        let cfg = self.config;
        let mut theta = problem.initial_point(cfg.seed);
        let tasks = problem.tasks();
        let params_per_cycle = problem.num_params();
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut now = SimTime::ZERO;
        let mut p_sum = 0.0;
        let mut updates = 0usize;

        let mut terminated = false;
        for epoch in 1..=cfg.epochs {
            // Walk the cyclic task list; tasks of the same parameter are
            // contiguous, gathered locally, then applied.
            let mut idx = 0usize;
            while idx < tasks.len() {
                let param = tasks[idx].param;
                let mut grad = 0.0;
                while idx < tasks.len() && tasks[idx].param == param {
                    let r = client.run_task(problem, tasks[idx], &theta, cfg.shots, now);
                    now = r.completed;
                    p_sum += r.p_correct;
                    grad += r.gradient;
                    idx += 1;
                }
                let mut step = cfg.learning_rate * grad;
                if let Some(clip) = cfg.gradient_clip {
                    step = step.clamp(-clip, clip);
                }
                theta[param.index()] -= step;
                updates += 1;
                if let Some(cap) = cfg.max_virtual_hours {
                    if now.as_hours() > cap {
                        terminated = true;
                        break;
                    }
                }
            }
            let _ = params_per_cycle;
            history.push(EpochRecord {
                epoch,
                virtual_hours: now.as_hours(),
                ideal_loss: problem.ideal_loss(&theta),
            });
            if terminated {
                break; // the paper's 2-week experiment cutoff
            }
        }

        let final_loss = problem.ideal_loss(&theta);
        let stats = ClientStats {
            device: client.device_name(),
            tasks_completed: client.tasks_completed(),
            circuits_run: client.circuits_run(),
            mean_p_correct: if client.tasks_completed() > 0 {
                p_sum / client.tasks_completed() as f64
            } else {
                0.0
            },
            mean_weight: 1.0,
            utilization: client.backend().utilization(now),
        };
        let _ = updates;
        let epochs_done = history.len();
        TrainingReport {
            problem: problem.name(),
            trainer: format!("single:{}", client.device_name()),
            epochs: epochs_done,
            history,
            final_params: theta,
            final_loss,
            reference_minimum: problem.reference_minimum(),
            total_hours: now.as_hours(),
            clients: vec![stats],
            weight_trace: Vec::new(),
            max_staleness: 0,
            mean_staleness: 0.0,
        }
    }
}

/// Synchronous data-parallel SGD over the ensemble — the staleness
/// ablation (DESIGN.md #5).
///
/// Each parameter's slices are dispatched to distinct clients
/// *simultaneously*, then a barrier waits for all of them before the
/// update applies. No gradient is ever stale, but parallelism is capped
/// at the slice count per parameter and every barrier waits for the
/// slowest participating device — which is exactly why the paper's
/// asynchronous design wins on heterogeneous fleets.
#[derive(Clone, Copy, Debug)]
pub struct SyncEnsembleTrainer {
    config: EqcConfig,
}

impl SyncEnsembleTrainer {
    /// Creates a trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EqcConfig) -> Self {
        config.validate();
        SyncEnsembleTrainer { config }
    }

    /// Trains `problem` with barrier-synchronized parameter updates.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty.
    pub fn train(&self, problem: &dyn VqaProblem, mut clients: Vec<ClientNode>) -> TrainingReport {
        assert!(!clients.is_empty(), "ensemble needs at least one client");
        let cfg = self.config;
        let n_clients = clients.len();
        let tasks = problem.tasks();
        let mut theta = problem.initial_point(cfg.seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut now = SimTime::ZERO;
        let mut last_p = vec![1.0f64; n_clients];
        let mut p_seen = vec![false; n_clients];
        let mut w_sums = vec![0.0f64; n_clients];
        let mut w_counts = vec![0u64; n_clients];
        let mut p_sums = vec![0.0f64; n_clients];
        let mut terminated = false;

        'training: for epoch in 1..=cfg.epochs {
            let mut idx = 0usize;
            let mut param_round = 0usize;
            while idx < tasks.len() {
                let param = tasks[idx].param;
                // Fan the parameter's slices out across distinct clients.
                let mut grad = 0.0;
                let mut barrier = now;
                let mut k = 0usize;
                while idx < tasks.len() && tasks[idx].param == param {
                    let ci = (param_round + k) % n_clients;
                    let r = clients[ci].run_task(problem, tasks[idx], &theta, cfg.shots, now);
                    last_p[ci] = r.p_correct;
                    p_seen[ci] = true;
                    p_sums[ci] += r.p_correct;
                    let w = match cfg.weight_bounds {
                        Some(bounds) => effective_weights(&last_p, &p_seen, bounds)[ci],
                        None => 1.0,
                    };
                    w_sums[ci] += w;
                    w_counts[ci] += 1;
                    grad += w * r.gradient;
                    barrier = barrier.max(r.completed);
                    idx += 1;
                    k += 1;
                }
                now = barrier; // synchronous: wait for the slowest slice
                let mut step = cfg.learning_rate * grad;
                if let Some(clip) = cfg.gradient_clip {
                    step = step.clamp(-clip, clip);
                }
                theta[param.index()] -= step;
                param_round += 1;
                if let Some(cap) = cfg.max_virtual_hours {
                    if now.as_hours() > cap {
                        terminated = true;
                        break;
                    }
                }
            }
            history.push(EpochRecord {
                epoch,
                virtual_hours: now.as_hours(),
                ideal_loss: problem.ideal_loss(&theta),
            });
            if terminated {
                break 'training;
            }
        }

        let final_loss = problem.ideal_loss(&theta);
        let client_stats = clients
            .iter()
            .enumerate()
            .map(|(i, c)| ClientStats {
                device: c.device_name(),
                tasks_completed: c.tasks_completed(),
                circuits_run: c.circuits_run(),
                mean_p_correct: if c.tasks_completed() > 0 {
                    p_sums[i] / c.tasks_completed() as f64
                } else {
                    0.0
                },
                mean_weight: if w_counts[i] > 0 {
                    w_sums[i] / w_counts[i] as f64
                } else {
                    1.0
                },
                utilization: c.backend().utilization(now),
            })
            .collect();
        let epochs_done = history.len();
        TrainingReport {
            problem: problem.name(),
            trainer: format!("sync[{n_clients}]"),
            epochs: epochs_done,
            history,
            final_params: theta,
            final_loss,
            reference_minimum: problem.reference_minimum(),
            total_hours: now.as_hours(),
            clients: client_stats,
            weight_trace: Vec::new(),
            max_staleness: 0, // barriers eliminate staleness by design
            mean_staleness: 0.0,
        }
    }
}

/// Convenience: trains the ideal-simulator baseline (single noiseless
/// zero-latency device).
pub fn train_ideal(problem: &dyn VqaProblem, config: EqcConfig) -> TrainingReport {
    let backend = ideal_backend(problem.num_qubits(), config.seed ^ 0x5eed);
    let client = crate::client::ClientNode::new(0, backend, problem)
        .expect("ideal backend always fits");
    let mut report = SingleDeviceTrainer::new(config).train(problem, client);
    report.trainer = "ideal".into();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdevice::catalog;
    use vqa::{QaoaProblem, VqeProblem};

    fn quiet_clients(problem: &dyn VqaProblem, names: &[&str]) -> Vec<ClientNode> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let spec = catalog::by_name(n).unwrap();
                let mut cal = spec.calibration();
                cal.degrade(0.05, 1.0);
                let backend = QpuBackend::new(
                    spec.name,
                    spec.topology(),
                    cal,
                    DriftModel::none(),
                    QueueModel::light(2.0),
                    24.0,
                    100 + i as u64,
                );
                ClientNode::new(i, backend, problem).unwrap()
            })
            .collect()
    }

    #[test]
    fn ideal_trainer_converges_on_qaoa() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(40).with_shots(4096);
        let report = train_ideal(&problem, cfg);
        assert_eq!(report.epochs, 40);
        // p=1 optimum is -0.75; expect to get near it.
        assert!(
            report.converged_loss(5) < -0.65,
            "converged {}",
            report.converged_loss(5)
        );
        // Loss decreased from the start.
        assert!(report.history.last().unwrap().ideal_loss < report.history[0].ideal_loss);
    }

    #[test]
    fn eqc_trains_qaoa_across_ensemble() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(30).with_shots(2048);
        let report = EqcTrainer::new(cfg).train(&problem, clients);
        assert_eq!(report.epochs, 30);
        assert!(report.converged_loss(5) < -0.6, "converged {}", report.converged_loss(5));
        // Every client contributed.
        for c in &report.clients {
            assert!(c.tasks_completed > 0, "{} idle", c.device);
        }
        assert!(report.total_hours > 0.0);
    }

    #[test]
    fn eqc_is_deterministic() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(6).with_shots(256);
        let a = EqcTrainer::new(cfg).train(&problem, quiet_clients(&problem, &["belem", "manila"]));
        let b = EqcTrainer::new(cfg).train(&problem, quiet_clients(&problem, &["belem", "manila"]));
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.total_hours, b.total_hours);
    }

    #[test]
    fn eqc_faster_than_single_device() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(8).with_shots(512);
        let ensemble = EqcTrainer::new(cfg).train(
            &problem,
            quiet_clients(&problem, &["belem", "manila", "bogota", "quito"]),
        );
        let single = SingleDeviceTrainer::new(cfg)
            .train(&problem, quiet_clients(&problem, &["belem"]).pop().unwrap());
        assert!(
            ensemble.epochs_per_hour() > 1.5 * single.epochs_per_hour(),
            "ensemble {:.2} vs single {:.2} epochs/h",
            ensemble.epochs_per_hour(),
            single.epochs_per_hour()
        );
    }

    #[test]
    fn weighted_run_produces_traces_in_band() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa()
            .with_epochs(6)
            .with_shots(512)
            .with_weights(WeightBounds::new(0.5, 1.5));
        let report = EqcTrainer::new(cfg).train(
            &problem,
            quiet_clients(&problem, &["belem", "x2", "bogota"]),
        );
        assert!(!report.weight_trace.is_empty());
        for sample in &report.weight_trace {
            for &w in &sample.weights {
                assert!((0.5..=1.5).contains(&w), "weight {w} out of band");
            }
        }
    }

    #[test]
    fn vqe_gather_semantics_update_counts() {
        // VQE: 16 params x 3 groups; 2 epochs = 32 parameter updates from
        // 96 slice tasks.
        let problem = VqeProblem::heisenberg_4q();
        let clients = quiet_clients(&problem, &["belem", "manila"]);
        let cfg = EqcConfig::paper_vqe().with_epochs(2).with_shots(128);
        let report = EqcTrainer::new(cfg).train(&problem, clients);
        assert_eq!(report.epochs, 2);
        let total_tasks: u64 = report.clients.iter().map(|c| c.tasks_completed).sum();
        // At least 2 cycles of 48 tasks were dispatched (boundary tasks
        // may exceed slightly).
        assert!(total_tasks >= 96, "only {total_tasks} tasks ran");
    }

    #[test]
    fn staleness_is_tracked() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota", "quito"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(10).with_shots(256);
        let report = EqcTrainer::new(cfg).train(&problem, clients);
        // With 4 async clients over 2 parameters, some updates must land
        // on parameters moved since dispatch.
        assert!(report.max_staleness >= 1, "staleness {}", report.max_staleness);
    }

    #[test]
    fn sync_trainer_converges_without_staleness() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(20).with_shots(1024);
        let report = SyncEnsembleTrainer::new(cfg).train(&problem, clients);
        assert_eq!(report.epochs, 20);
        assert_eq!(report.max_staleness, 0);
        assert!(report.converged_loss(5) < -0.55, "{}", report.converged_loss(5));
    }

    #[test]
    fn async_beats_sync_on_heterogeneous_fleet() {
        // With a slow straggler in the ensemble, the async executor should
        // deliver clearly more epochs/hour than barrier-synchronized SGD.
        let problem = vqa::QaoaProblem::maxcut_ring4();
        let mk = || {
            let mut v = quiet_clients(&problem, &["belem", "manila", "bogota"]);
            let spec = catalog::by_name("quito").unwrap();
            let slow = QpuBackend::new(
                "slowpoke",
                spec.topology(),
                spec.calibration(),
                DriftModel::none(),
                QueueModel::congested(400.0, 0.1, 0.0),
                24.0,
                9,
            );
            v.push(ClientNode::new(3, slow, &problem).unwrap());
            v
        };
        let cfg = EqcConfig::paper_qaoa().with_epochs(8).with_shots(512);
        let sync = SyncEnsembleTrainer::new(cfg).train(&problem, mk());
        let asyn = EqcTrainer::new(cfg).train(&problem, mk());
        assert!(
            asyn.epochs_per_hour() > 1.5 * sync.epochs_per_hour(),
            "async {:.2} vs sync {:.2}",
            asyn.epochs_per_hour(),
            sync.epochs_per_hour()
        );
    }

    #[test]
    fn single_device_history_is_monotone_in_time() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(5).with_shots(256);
        let report = SingleDeviceTrainer::new(cfg)
            .train(&problem, quiet_clients(&problem, &["manila"]).pop().unwrap());
        for w in report.history.windows(2) {
            assert!(w[1].virtual_hours > w[0].virtual_hours);
        }
    }
}
