//! The always-on fleet service: streaming admission over the fleet's
//! lane machinery.
//!
//! [`FleetRuntime::run`](super::FleetRuntime::run) drives one closed
//! batch of tenants to completion and stops; the paper's premise,
//! though, is a cloud of drifting QPUs serving variational workloads
//! *continuously*. A [`FleetService`] keeps the fleet clock alive
//! across admissions: [`FleetService::admit`] lands a tenant on a
//! seeded admission queue (arrival times in virtual hours on the fleet
//! clock), [`FleetService::drain`] drives the fleet to quiescence —
//! activating tenants as their arrival times come due, retiring each
//! one the moment its last gather absorbs, idling deterministically
//! over an empty fleet until the next arrival — and
//! [`FleetService::close`] returns the collected
//! [`FleetOutcome`] plus the service-level
//! [`ServiceTelemetry`] (admissions, retirements, deadline hits and
//! misses, idle hours, sustained epochs/h).
//!
//! Determinism is inherited, not re-implemented: the service drives
//! the same resumable stepper the batch runtime wraps, so a service
//! run whose tenants all arrive at `t = 0` replays
//! [`FleetRuntime::run`](super::FleetRuntime::run) byte for byte, and
//! the DES and pooled streaming drives stay byte-identical to each
//! other (both pinned by tests). Each tenant's own virtual clock
//! starts at zero regardless of its arrival time, so its
//! [`TrainingReport`] is exactly what the same session would produce
//! standalone.
//!
//! ```
//! use eqc_core::policy::arbiter::EarliestDeadlineFirst;
//! use eqc_core::{EqcConfig, FleetRuntime, TenantConfig};
//! use vqa::QaoaProblem;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(128);
//! let mut service = FleetRuntime::builder()
//!     .devices(["belem", "manila"])
//!     .arbiter(EarliestDeadlineFirst)
//!     .service()?;
//! let a = service.admit(&problem, TenantConfig::new(cfg).deadline(2000.0))?;
//! let b = service.admit_at(&problem, TenantConfig::new(cfg.with_seed(11)), 1.5)?;
//! let retired = service.drain()?;
//! assert_eq!(retired.len(), 2);
//! assert!(service.poll(a).is_some() && service.poll(b).is_some());
//! let outcome = service.close()?;
//! assert_eq!(outcome.try_report(a)?.epochs, 2);
//! assert_eq!(outcome.service.admissions, 2);
//! # Ok::<(), eqc_core::EqcError>(())
//! ```

use super::{
    drive_stream_des, drive_stream_pooled, drive_stream_shared, ledgers_for, occupancy_rows,
    queue_wait_hours, Arrival, DriveClock, FleetOutcome, Lane, LaneCounters, OccupancyTracker,
    Substrate, TenantId,
};
use crate::client::ClientNode;
use crate::config::{PoolConfig, ServiceConfig, TenantConfig};
use crate::ensemble::{clients_for, probes_for, Device};
use crate::error::EqcError;
use crate::master::MasterLoop;
use crate::policy::arbiter::TenantArbiter;
use crate::report::{
    FleetTelemetry, PoolTelemetry, ServiceTelemetry, ServiceTenantRecord, TenantTelemetry,
    TrainingReport,
};
use qdevice::{DeviceQueue, SharedNoiseCache};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use vqa::VqaProblem;

/// Handle to one tenant admitted to a [`FleetService`], valid for the
/// service's whole lifetime (the service never recycles indices, so
/// handles cannot go stale the way batch [`TenantId`]s can).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantHandle {
    id: TenantId,
}

impl TenantHandle {
    /// The underlying fleet tenant id (service generation 0).
    pub fn id(self) -> TenantId {
        self.id
    }

    /// The tenant's index in service admission order — indexes
    /// [`FleetOutcome::reports`] and [`ServiceTelemetry::tenants`] of
    /// the closed service's outcome.
    pub fn index(self) -> usize {
        self.id.index()
    }
}

/// A tenant admitted but not yet driven: its session halves plus the
/// arbiter-facing knobs and its fleet-clock arrival time.
struct PendingTenant<'p> {
    /// Global admission index (never recycled).
    index: usize,
    label: String,
    problem: &'p dyn VqaProblem,
    shots: usize,
    weight: f64,
    priority: i64,
    deadline_h: Option<f64>,
    arrival_h: f64,
    clients: Vec<ClientNode>,
    master: MasterLoop,
}

/// Everything a retired tenant leaves behind.
struct RetiredTenant {
    report: TrainingReport,
    telemetry: TenantTelemetry,
    record: ServiceTenantRecord,
}

/// The result of closing a [`FleetService`]: the accumulated
/// [`FleetOutcome`] (reports + fleet telemetry in admission order)
/// plus the service-level [`ServiceTelemetry`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceOutcome {
    /// Reports and fleet telemetry, indexed by admission order —
    /// exactly the shape one big [`FleetRuntime::run`] batch produces.
    ///
    /// [`FleetRuntime::run`]: super::FleetRuntime::run
    pub fleet: FleetOutcome,
    /// Service-level telemetry: admissions, retirements, SLO outcomes,
    /// idle hours, sustained throughput.
    pub service: ServiceTelemetry,
}

impl ServiceOutcome {
    /// The training report of one tenant, via the fleet outcome's
    /// typed stale-handle check.
    ///
    /// # Errors
    ///
    /// [`EqcError::StaleTenant`] as
    /// [`FleetOutcome::try_report`] (unreachable for handles minted by
    /// the service that produced this outcome).
    pub fn try_report(&self, handle: TenantHandle) -> Result<&TrainingReport, EqcError> {
        self.fleet.try_report(handle.id)
    }

    /// The fleet telemetry of one tenant, via the typed stale-handle
    /// check.
    ///
    /// # Errors
    ///
    /// As [`ServiceOutcome::try_report`].
    pub fn try_tenant(&self, handle: TenantHandle) -> Result<&TenantTelemetry, EqcError> {
        self.fleet.try_tenant(handle.id)
    }

    /// The service lifecycle record of one tenant.
    pub fn record(&self, handle: TenantHandle) -> Option<&ServiceTenantRecord> {
        self.service.tenants.get(handle.index())
    }
}

/// The always-on fleet drive: a streaming [`FleetRuntime`] whose
/// tenants arrive on a virtual-time admission queue and retire
/// individually. Build with [`FleetBuilder::service`].
///
/// [`FleetRuntime`]: super::FleetRuntime
/// [`FleetBuilder::service`]: super::FleetBuilder::service
pub struct FleetService<'p> {
    devices: Vec<Device>,
    arbiter: Arc<dyn TenantArbiter>,
    substrate: Substrate,
    config: ServiceConfig,
    /// The admission queue: tenants waiting for the next drain.
    pending: Vec<PendingTenant<'p>>,
    /// One slot per admission, filled at retirement.
    retired: Vec<Option<RetiredTenant>>,
    /// The fleet clock, persistent across drains.
    clock: DriveClock,
    /// Pool telemetry merged across pooled drains.
    pool: Option<PoolTelemetry>,
    /// The per-device occupancy ledgers of the shared substrate, built
    /// lazily at the first drain and persistent across drains — the
    /// devices' queue timelines outlive any one tenant batch, exactly
    /// like the fleet clock.
    shared_ledgers: Option<Vec<Arc<Mutex<DeviceQueue>>>>,
    /// The incremental occupancy view over `shared_ledgers`, built with
    /// them and persistent across drains (its reuse/rebuild counters
    /// span the service lifetime).
    occupancy_tracker: Option<OccupancyTracker>,
    /// Whether co-tenant clones of one physical device share a noise
    /// cache (see [`FleetBuilder::without_noise_sharing`]).
    ///
    /// [`FleetBuilder::without_noise_sharing`]: super::FleetBuilder::without_noise_sharing
    share_noise: bool,
    /// Shared-mode: one cache per device slot, persistent across drains
    /// (device noise is keyed by calibration cycle, which outlives any
    /// one tenant batch). Private-mode: every per-clone cache ever
    /// attached, so [`FleetService::close`] can sum build counts.
    noise_caches: Vec<Arc<SharedNoiseCache>>,
    /// Per-device queue-wait seconds accumulated across retired tenants
    /// (lane order within each drain, matching the batch runtime's
    /// summation order bit for bit).
    occupancy_queued_s: Vec<f64>,
    /// The fleet-wide batched-job pipeline, built lazily by the first
    /// admitted pipeline tenant and shared by every later one (see
    /// [`FleetRuntime`](super::FleetRuntime)).
    pipeline: Option<Arc<qsim::BatchPipeline>>,
}

impl std::fmt::Debug for FleetService<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetService")
            .field("devices", &self.devices.len())
            .field("arbiter", &self.arbiter.name())
            .field("substrate", &self.substrate)
            .field("pending", &self.pending.len())
            .field("admissions", &self.retired.len())
            .field("now_h", &self.now_h())
            .finish()
    }
}

impl<'p> FleetService<'p> {
    pub(crate) fn from_parts(
        devices: Vec<Device>,
        arbiter: Arc<dyn TenantArbiter>,
        substrate: Substrate,
        config: ServiceConfig,
        share_noise: bool,
    ) -> Self {
        let n = devices.len();
        FleetService {
            devices,
            arbiter,
            substrate,
            config,
            pending: Vec::new(),
            retired: Vec::new(),
            clock: DriveClock::default(),
            pool: None,
            shared_ledgers: None,
            occupancy_tracker: None,
            share_noise,
            noise_caches: Vec::new(),
            occupancy_queued_s: vec![0.0; n],
            pipeline: None,
        }
    }

    /// Devices in the shared pool (= concurrent-task slots).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Tenants waiting in the admission queue for the next drain.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Tenants admitted over the service lifetime so far.
    pub fn admissions(&self) -> usize {
        self.retired.len()
    }

    /// The arbiter policy's name.
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiter.name()
    }

    /// The fleet clock, in virtual hours since the service started.
    pub fn now_h(&self) -> f64 {
        self.clock.now_s / 3600.0
    }

    /// Admits a tenant arriving *now* (at the current fleet clock).
    ///
    /// # Errors
    ///
    /// As [`FleetService::admit_at`].
    pub fn admit(
        &mut self,
        problem: &'p dyn VqaProblem,
        tenant: TenantConfig,
    ) -> Result<TenantHandle, EqcError> {
        let now = self.now_h();
        self.admit_at(problem, tenant, now)
    }

    /// Admits a tenant arriving at `arrival_h` virtual hours on the
    /// fleet clock: transpiles the problem's templates for every fleet
    /// device (seeded exactly as a standalone
    /// [`Ensemble`](crate::Ensemble) over the same devices), queues
    /// the tenant for the next [`FleetService::drain`], and returns a
    /// handle valid for the service's whole lifetime.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] for a bad tenant description or an
    /// arrival before the fleet clock,
    /// [`EqcError::AdmissionQueueFull`] at the configured pending cap,
    /// [`EqcError::EmptyProblem`] / [`EqcError::Transpile`] as in
    /// [`FleetRuntime::admit`](super::FleetRuntime::admit).
    pub fn admit_at(
        &mut self,
        problem: &'p dyn VqaProblem,
        tenant: TenantConfig,
        arrival_h: f64,
    ) -> Result<TenantHandle, EqcError> {
        tenant.validate()?;
        if !(arrival_h.is_finite() && arrival_h >= 0.0) {
            return Err(EqcError::InvalidConfig(format!(
                "tenant arrival must be a finite non-negative virtual hour, got {arrival_h}"
            )));
        }
        if arrival_h < self.now_h() {
            return Err(EqcError::InvalidConfig(format!(
                "tenant arrival at {arrival_h} h is behind the fleet clock ({} h)",
                self.now_h()
            )));
        }
        if let Some(cap) = self.config.max_pending {
            if self.pending.len() >= cap {
                return Err(EqcError::AdmissionQueueFull { capacity: cap });
            }
        }
        if problem.num_params() == 0 || problem.tasks().is_empty() {
            return Err(EqcError::EmptyProblem(problem.name()));
        }
        let par = tenant.config.sim_parallelism.build_ctx();
        let pipeline = tenant
            .config
            .sim_parallelism
            .build_pipeline()
            .map(|built| self.pipeline.get_or_insert(built).clone());
        let clients = clients_for(&self.devices, problem, &par, pipeline.as_ref())?;
        let probes = probes_for(&tenant.policies, &clients);
        let master = MasterLoop::new(
            problem,
            tenant.config,
            tenant.policies,
            clients.len(),
            probes,
        );
        let index = self.retired.len();
        self.pending.push(PendingTenant {
            index,
            label: tenant.label.unwrap_or_else(|| format!("tenant{index}")),
            problem,
            shots: tenant.config.shots,
            weight: tenant.weight,
            priority: tenant.priority,
            deadline_h: tenant.deadline_h,
            arrival_h,
            clients,
            master,
        });
        self.retired.push(None);
        Ok(TenantHandle {
            id: TenantId { index, batch: 0 },
        })
    }

    /// Drives the fleet to quiescence: activates queued tenants as
    /// their arrival times come due (idling deterministically over an
    /// empty fleet), retires each the moment its last gather absorbs,
    /// and returns the retired tenants' handles in retirement order.
    /// Poll retired reports with [`FleetService::poll`]; the fleet
    /// clock keeps running for later admissions.
    ///
    /// # Errors
    ///
    /// [`EqcError::Internal`] if the drive or the pooled substrate
    /// fails (the failed drain's tenants are discarded).
    pub fn drain(&mut self) -> Result<Vec<TenantHandle>, EqcError> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        if let Substrate::Shared { load } = self.substrate {
            if self.shared_ledgers.is_none() {
                let ledgers = ledgers_for(&self.devices, load)?;
                self.occupancy_tracker = Some(OccupancyTracker::new(&ledgers)?);
                self.shared_ledgers = Some(ledgers);
            }
        }
        let slots = self.devices.len();
        let mut batch = std::mem::take(&mut self.pending);
        // Stable by arrival: simultaneous arrivals activate in
        // admission order, matching the batch runtime's lane order.
        batch.sort_by(|a, b| a.arrival_h.total_cmp(&b.arrival_h));
        // Noise sharing mirrors the batch runtime: shared mode attaches
        // the service's persistent per-device caches; private mode gives
        // each clone a fresh cache, remembered so close() can sum
        // builds.
        if self.share_noise {
            if self.noise_caches.is_empty() {
                self.noise_caches
                    .extend((0..slots).map(|_| Arc::new(SharedNoiseCache::default())));
            }
            for p in batch.iter_mut() {
                for (d, client) in p.clients.iter_mut().enumerate() {
                    client
                        .backend_mut()
                        .attach_shared_noise(Arc::clone(&self.noise_caches[d]));
                }
            }
        } else {
            for p in batch.iter_mut() {
                for client in p.clients.iter_mut() {
                    let cache = Arc::new(SharedNoiseCache::default());
                    client.backend_mut().attach_shared_noise(Arc::clone(&cache));
                    self.noise_caches.push(cache);
                }
            }
        }
        let mut arrivals: VecDeque<Arrival> = batch
            .iter()
            .enumerate()
            .map(|(lane, p)| Arrival {
                lane,
                at_s: p.arrival_h * 3600.0,
            })
            .collect();
        let mut retired_at: Vec<(usize, f64)> = Vec::with_capacity(batch.len());
        let mut lanes: Vec<Lane<'_, 'p>> = batch
            .iter_mut()
            .map(|p| {
                let PendingTenant {
                    problem,
                    shots,
                    weight,
                    priority,
                    deadline_h,
                    arrival_h,
                    clients,
                    master,
                    ..
                } = p;
                Lane::new(*problem, *shots, clients, master, *weight, *priority)
                    .with_deadline(*deadline_h)
                    .arriving_at(*arrival_h * 3600.0)
            })
            .collect();
        let mut on_retire = |lane: usize, at_s: f64| retired_at.push((lane, at_s));
        let driven = match self.substrate {
            Substrate::DiscreteEvent => drive_stream_des(
                &mut lanes,
                self.arbiter.as_ref(),
                slots,
                &mut self.clock,
                &mut arrivals,
                &mut on_retire,
            ),
            Substrate::Shared { .. } => drive_stream_shared(
                &mut lanes,
                self.arbiter.as_ref(),
                slots,
                self.shared_ledgers.as_deref().expect("built above"),
                self.occupancy_tracker.as_mut().expect("built above"),
                &mut self.clock,
                &mut arrivals,
                &mut on_retire,
            ),
            Substrate::Pooled { workers } => {
                let total = lanes.iter().map(|l| l.clients.len()).sum();
                let resolved = PoolConfig {
                    workers,
                    deterministic: true,
                }
                .resolved_workers(total);
                let (d, telemetry) = drive_stream_pooled(
                    &mut lanes,
                    self.arbiter.as_ref(),
                    slots,
                    resolved,
                    &mut self.clock,
                    &mut arrivals,
                    &mut on_retire,
                );
                self.merge_pool(telemetry);
                d
            }
        };
        let counters: Vec<LaneCounters> = lanes
            .iter_mut()
            .map(|l| std::mem::take(&mut l.counters))
            .collect();
        drop(lanes);
        for p in batch.iter_mut() {
            for client in p.clients.iter_mut() {
                client.backend_mut().detach_shared_noise();
            }
        }
        driven?;
        debug_assert_eq!(retired_at.len(), batch.len(), "drain retires every lane");
        if self.shared_ledgers.is_some() {
            // Accumulate in lane order, not retirement order: the batch
            // runtime sums per-device queue waits over tenants in
            // admission order, and a zero-arrival drain must replay it
            // bit for bit.
            for p in &batch {
                for (d, client) in p.clients.iter().enumerate() {
                    self.occupancy_queued_s[d] += client.backend().queued_seconds();
                }
            }
        }

        // Retirement *times* were recorded eagerly; the reports are
        // assembled here, which is byte-identical because a retired
        // lane's master and clients receive no further work.
        let mut handles = Vec::with_capacity(retired_at.len());
        for (lane, at_s) in retired_at {
            let p = &batch[lane];
            let report =
                p.master
                    .report(p.problem, format!("eqc[{}]", p.clients.len()), &p.clients)?;
            let c = &counters[lane];
            let telemetry = TenantTelemetry {
                tenant: p.index,
                label: p.label.clone(),
                weight: p.weight,
                priority: p.priority,
                results_absorbed: c.results_absorbed,
                epochs: report.epochs,
                virtual_hours: report.total_hours,
                epochs_per_hour: report.epochs_per_hour(),
                wait_virtual_hours: c.wait_virtual_hours,
                wait_rounds: c.wait_rounds,
                starved_rounds: c.starved_rounds,
                client_share: c.client_share.clone(),
                queue_wait_hours: queue_wait_hours(&p.clients),
            };
            let record = ServiceTenantRecord {
                tenant: p.index,
                label: p.label.clone(),
                arrival_h: p.arrival_h,
                retired_h: at_s / 3600.0,
                deadline_h: p.deadline_h,
                deadline_met: p.deadline_h.map(|d| report.total_hours <= d),
                epochs: report.epochs,
            };
            self.retired[p.index] = Some(RetiredTenant {
                report,
                telemetry,
                record,
            });
            handles.push(TenantHandle {
                id: TenantId {
                    index: p.index,
                    batch: 0,
                },
            });
        }
        Ok(handles)
    }

    /// The retired tenant's training report, or `None` while the
    /// tenant is still pending or in flight.
    pub fn poll(&self, handle: TenantHandle) -> Option<&TrainingReport> {
        self.retired
            .get(handle.index())
            .and_then(|r| r.as_ref())
            .map(|r| &r.report)
    }

    /// Drains any remaining admissions and closes the service,
    /// returning every tenant's report and telemetry (admission order)
    /// plus the service-level telemetry.
    ///
    /// # Errors
    ///
    /// [`EqcError::NoTenants`] when nothing was ever admitted;
    /// [`EqcError::Internal`] as [`FleetService::drain`].
    pub fn close(mut self) -> Result<ServiceOutcome, EqcError> {
        self.drain()?;
        if self.retired.is_empty() {
            return Err(EqcError::NoTenants);
        }
        let admissions = self.retired.len();
        let occupancy = match &self.shared_ledgers {
            Some(ledgers) => occupancy_rows(&self.devices, ledgers, &self.occupancy_queued_s)?,
            None => Vec::new(),
        };
        let mut reports = Vec::with_capacity(admissions);
        let mut per_tenant = Vec::with_capacity(admissions);
        let mut records = Vec::with_capacity(admissions);
        let mut epochs_total = 0u64;
        let (mut hits, mut misses) = (0usize, 0usize);
        for slot in self.retired {
            let r = slot.ok_or_else(|| {
                EqcError::Internal("service closed with an unretired tenant".into())
            })?;
            epochs_total += r.record.epochs as u64;
            match r.record.deadline_met {
                Some(true) => hits += 1,
                Some(false) => misses += 1,
                None => {}
            }
            reports.push(r.report);
            per_tenant.push(r.telemetry);
            records.push(r.record);
        }
        let span_h = self.clock.now_s / 3600.0;
        let (snapshot_rebuilds, snapshot_reuses) = self
            .occupancy_tracker
            .as_ref()
            .map_or((0, 0), |t| t.counters());
        Ok(ServiceOutcome {
            fleet: FleetOutcome {
                reports,
                telemetry: FleetTelemetry {
                    arbiter: self.arbiter.name().to_string(),
                    devices: self.devices.len(),
                    grant_rounds: self.clock.round,
                    tenants: per_tenant,
                    occupancy,
                    snapshot_rebuilds,
                    snapshot_reuses,
                    shared_noise_builds: self.noise_caches.iter().map(|c| c.builds()).sum(),
                    shared_noise_hits: self.noise_caches.iter().map(|c| c.hits()).sum(),
                },
                pool: self.pool,
                batch: 0,
            },
            service: ServiceTelemetry {
                arbiter: self.arbiter.name().to_string(),
                devices: self.devices.len(),
                admissions,
                retirements: records.len(),
                deadline_hits: hits,
                deadline_misses: misses,
                idle_virtual_hours: self.clock.idle_s / 3600.0,
                span_virtual_hours: span_h,
                sustained_epochs_per_hour: if span_h > 0.0 {
                    epochs_total as f64 / span_h
                } else {
                    0.0
                },
                tenants: records,
            },
        })
    }

    fn merge_pool(&mut self, telemetry: PoolTelemetry) {
        self.pool = Some(match self.pool.take() {
            None => telemetry,
            Some(prev) => PoolTelemetry {
                workers_spawned: prev.workers_spawned.max(telemetry.workers_spawned),
                queue_depth_max: prev.queue_depth_max.max(telemetry.queue_depth_max),
                tasks_stolen: prev.tasks_stolen + telemetry.tasks_stolen,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::FleetRuntime;
    use super::*;
    use crate::config::EqcConfig;
    use vqa::QaoaProblem;

    fn service_cfg(epochs: usize) -> EqcConfig {
        EqcConfig::paper_qaoa().with_epochs(epochs).with_shots(128)
    }

    fn builder() -> super::super::FleetBuilder {
        FleetRuntime::builder()
            .devices(["belem", "manila"])
            .device_seed(7)
    }

    #[test]
    fn admission_queue_cap_is_enforced() {
        let problem = QaoaProblem::maxcut_ring4();
        let mut service = builder()
            .service_with(ServiceConfig::default().with_max_pending(1))
            .expect("builds");
        service
            .admit(&problem, TenantConfig::new(service_cfg(1)))
            .expect("first admission fits");
        assert_eq!(
            service
                .admit(&problem, TenantConfig::new(service_cfg(1)))
                .unwrap_err(),
            EqcError::AdmissionQueueFull { capacity: 1 }
        );
        service.drain().expect("drains");
        service
            .admit(&problem, TenantConfig::new(service_cfg(1)))
            .expect("queue freed by the drain");
    }

    #[test]
    fn arrivals_behind_the_clock_are_rejected() {
        let problem = QaoaProblem::maxcut_ring4();
        let mut service = builder().service().expect("builds");
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                service.admit_at(&problem, TenantConfig::new(service_cfg(1)), bad),
                Err(EqcError::InvalidConfig(_))
            ));
        }
        service
            .admit(&problem, TenantConfig::new(service_cfg(1)))
            .expect("admits");
        service.drain().expect("drains");
        assert!(service.now_h() > 0.0);
        assert!(matches!(
            service.admit_at(&problem, TenantConfig::new(service_cfg(1)), 0.0),
            Err(EqcError::InvalidConfig(_))
        ));
    }

    #[test]
    fn poll_flips_at_retirement_and_close_collects_everything() {
        let problem = QaoaProblem::maxcut_ring4();
        let mut service = builder().service().expect("builds");
        let h = service
            .admit(&problem, TenantConfig::new(service_cfg(2)))
            .expect("admits");
        assert!(service.poll(h).is_none(), "not driven yet");
        assert_eq!(service.num_pending(), 1);
        let retired = service.drain().expect("drains");
        assert_eq!(retired, vec![h]);
        assert_eq!(service.num_pending(), 0);
        let report = service.poll(h).expect("retired");
        assert_eq!(report.epochs, 2);
        let outcome = service.close().expect("closes");
        assert_eq!(outcome.fleet.reports.len(), 1);
        assert_eq!(outcome.try_report(h).expect("fresh handle").epochs, 2);
        assert_eq!(outcome.record(h).expect("recorded").epochs, 2);
        assert!(outcome.record(h).expect("recorded").deadline_met.is_none());
        assert_eq!(outcome.service.admissions, 1);
        assert_eq!(outcome.service.retirements, 1);
        assert!(outcome.service.sustained_epochs_per_hour > 0.0);
    }

    #[test]
    fn zero_arrival_shared_service_replays_the_batch_runtime() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = service_cfg(2);
        let run = {
            let mut fleet = builder().shared().build().expect("builds");
            fleet
                .admit(&problem, TenantConfig::new(cfg))
                .expect("admits");
            fleet
                .admit(&problem, TenantConfig::new(cfg.with_seed(11)))
                .expect("admits");
            fleet.run().expect("runs")
        };
        let mut service = builder().shared().service().expect("builds");
        service
            .admit(&problem, TenantConfig::new(cfg))
            .expect("admits");
        service
            .admit(&problem, TenantConfig::new(cfg.with_seed(11)))
            .expect("admits");
        let outcome = service.close().expect("closes");
        assert_eq!(
            format!("{:?}", run.reports),
            format!("{:?}", outcome.fleet.reports),
            "both tenants at t=0: the streaming drain must replay the batch runtime"
        );
        assert_eq!(run.telemetry.tenants, outcome.fleet.telemetry.tenants);
        assert_eq!(
            run.telemetry.occupancy, outcome.fleet.telemetry.occupancy,
            "per-device ledgers must agree between batch run and streamed drain"
        );
    }

    #[test]
    fn closing_an_unused_service_is_a_typed_error() {
        let service = builder().service().expect("builds");
        assert_eq!(service.close().unwrap_err(), EqcError::NoTenants);
    }

    #[test]
    fn zero_pending_cap_and_zero_workers_are_rejected() {
        assert!(matches!(
            builder()
                .service_with(ServiceConfig::default().with_max_pending(0))
                .map(|_| ())
                .unwrap_err(),
            EqcError::InvalidConfig(_)
        ));
        assert!(matches!(
            builder()
                .pooled_workers(0)
                .service()
                .map(|_| ())
                .unwrap_err(),
            EqcError::InvalidConfig(_)
        ));
    }

    #[test]
    fn deadline_outcomes_land_in_the_records() {
        let problem = QaoaProblem::maxcut_ring4();
        let mut service = builder().service().expect("builds");
        let met = service
            .admit(
                &problem,
                TenantConfig::new(service_cfg(1))
                    .deadline(1.0e6)
                    .label("ok"),
            )
            .expect("admits");
        let blown = service
            .admit(
                &problem,
                TenantConfig::new(service_cfg(1).with_seed(11)).deadline(1.0e-6),
            )
            .expect("admits");
        let outcome = service.close().expect("closes");
        assert_eq!(outcome.record(met).unwrap().deadline_met, Some(true));
        assert_eq!(outcome.record(blown).unwrap().deadline_met, Some(false));
        assert_eq!(outcome.service.deadline_hits, 1);
        assert_eq!(outcome.service.deadline_misses, 1);
        assert_eq!(outcome.record(met).unwrap().label, "ok");
    }
}
