//! The EQC client node (Algorithm 2 of the paper).
//!
//! One client manages one QPU: it transpiles the problem's circuit
//! templates once for its device's topology — and compiles each into a
//! [`CompiledTemplate`] that the backend re-lowers at most once per
//! calibration cycle — then serves gradient tasks: the per-occurrence
//! forward/backward shift pairs go to the device as **one** batched
//! engine call ([`QpuBackend::execute_templates`]), the loss is read off
//! the returned counts, and the gradient is reported together with the
//! device's current `P_correct`.

use crate::weighting;
use qcircuit::ParamId;
use qdevice::{CompiledTemplate, QpuBackend, SimTime, TemplateRun};
use qsim::Counts;
use transpile::{transpile, CircuitMetrics, TranspileError, TranspileOptions, Transpiled};
use vqa::{GradientTask, VqaProblem};

/// A problem template prepared for one device.
#[derive(Clone, Debug)]
struct PreparedTemplate {
    /// Compiled form of the compacted symbolic physical circuit: cached
    /// op-tape + channel set per noise epoch, rebound per job.
    compiled: CompiledTemplate,
    /// Gate indices of each parameter's occurrences in the compact
    /// circuit, indexed by [`ParamId`] (precomputed: the hot path reads
    /// them per task).
    occurrences: Vec<Vec<usize>>,
    /// Bit position of each logical qubit in the compact register.
    logical_bits: Vec<usize>,
    /// Full transpilation artifact (metrics, layouts).
    transpiled: Transpiled,
}

/// The result of one gradient task executed on one device.
#[derive(Clone, Debug)]
pub struct ClientTaskResult {
    /// The task that was executed.
    pub task: GradientTask,
    /// Unweighted gradient contribution of the task's slice.
    pub gradient: f64,
    /// The device's Eq. 2 score at submission, from *reported*
    /// calibration.
    pub p_correct: f64,
    /// Virtual submission time.
    pub submitted: SimTime,
    /// Virtual completion time.
    pub completed: SimTime,
    /// Circuits executed for this task.
    pub circuits_run: usize,
}

/// A client node paired with one backend.
#[derive(Clone, Debug)]
pub struct ClientNode {
    id: usize,
    backend: QpuBackend,
    templates: Vec<PreparedTemplate>,
    circuits_run: u64,
    tasks_completed: u64,
}

impl ClientNode {
    /// Creates a client by transpiling every problem template for the
    /// backend's topology.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError`] if a template does not fit the device.
    pub fn new(
        id: usize,
        backend: QpuBackend,
        problem: &dyn VqaProblem,
    ) -> Result<Self, TranspileError> {
        let options = TranspileOptions::default();
        let mut templates = Vec::with_capacity(problem.templates().len());
        for template in problem.templates() {
            let transpiled = transpile(template, backend.topology(), &options)?;
            let (compact, logical_bits) = transpiled.compact_for_simulation()?;
            let active_physical = transpiled.active_qubits();
            // The transpiler must preserve parameter occurrences, or the
            // shift rule would silently drop gradient terms — and the
            // pooled executor's deterministic lookahead classifies
            // instant (zero-occurrence) tasks from the *un-transpiled*
            // templates, so this invariant is load-bearing in release
            // builds too (a hard assert, not a debug assert).
            for p in 0..template.num_params() {
                assert_eq!(
                    compact.occurrences_of(ParamId(p)).len(),
                    template.occurrences_of(ParamId(p)).len(),
                    "transpilation changed occurrence structure"
                );
            }
            let occurrences = (0..compact.num_params())
                .map(|p| compact.occurrences_of(ParamId(p)))
                .collect();
            templates.push(PreparedTemplate {
                compiled: CompiledTemplate::new(compact, active_physical),
                occurrences,
                logical_bits,
                transpiled,
            });
        }
        Ok(ClientNode {
            id,
            backend,
            templates,
            circuits_run: 0,
            tasks_completed: 0,
        })
    }

    /// Client id within the ensemble.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Device name.
    pub fn device_name(&self) -> String {
        self.backend.name().to_string()
    }

    /// Total circuits executed by this client.
    pub fn circuits_run(&self) -> u64 {
        self.circuits_run
    }

    /// Total gradient tasks completed.
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_completed
    }

    /// Times this client's templates were compiled into executable
    /// programs — with a stable calibration this stays at one compile
    /// per template per calibration cycle touched, however many jobs ran.
    pub fn programs_compiled(&self) -> u64 {
        self.templates.iter().map(|t| t.compiled.compiles()).sum()
    }

    /// Jobs served from cached compiled programs without recompiling.
    pub fn program_cache_hits(&self) -> u64 {
        self.templates.iter().map(|t| t.compiled.cache_hits()).sum()
    }

    /// Forward/backward shift pairs the backend evolved over a shared
    /// tape prefix (engine telemetry; does not affect results).
    pub fn folded_pairs(&self) -> u64 {
        self.backend.folded_pairs()
    }

    /// Lanes of engine data-parallelism the backend simulates with (1
    /// when serial; does not affect results).
    pub fn sim_workers(&self) -> usize {
        self.backend.sim_workers()
    }

    /// Batch groups the backend resumed from a cached op-tape prefix
    /// state (engine telemetry; does not affect results).
    pub fn prefix_hits(&self) -> u64 {
        self.backend.prefix_hits()
    }

    /// Runs the backend executed through the batched pipeline path
    /// (engine telemetry; does not affect results).
    pub fn batched_jobs(&self) -> u64 {
        self.backend.batched_jobs()
    }

    /// Lanes of the shared batched-job pipeline this client's backend
    /// is attached to (0 when the batched path is off).
    pub fn pipeline_lanes(&self) -> usize {
        self.backend.pipeline_lanes()
    }

    /// Borrows the backend (e.g. for calibration queries in reports).
    pub fn backend(&self) -> &QpuBackend {
        &self.backend
    }

    /// Mutably borrows the backend — the fleet's shared substrate uses
    /// this to attach/detach the per-device occupancy ledger.
    pub(crate) fn backend_mut(&mut self) -> &mut QpuBackend {
        &mut self.backend
    }

    /// Number of problem templates this client prepared.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Transpiled metrics of template `t` (inputs to Eq. 2).
    pub fn template_metrics(&self, t: usize) -> &CircuitMetrics {
        &self.templates[t].transpiled.metrics
    }

    /// The device's current Eq. 2 score for the given templates, from the
    /// *reported* (possibly stale) calibration — exactly what Algorithm 2
    /// computes at circuit induction time.
    pub fn p_correct_at(&self, template_indices: &[usize], t: SimTime) -> f64 {
        let cal = self.backend.reported_calibration(t);
        Self::mean_p_correct(&self.templates, &cal, template_indices)
    }

    /// The shared Eq. 2 scoring body behind [`ClientNode::p_correct_at`]
    /// and the task hot path (which reads the calibration from the
    /// backend's per-cycle cache instead of rebuilding it).
    fn mean_p_correct(
        templates: &[PreparedTemplate],
        cal: &qdevice::Calibration,
        template_indices: &[usize],
    ) -> f64 {
        let mean: f64 = template_indices
            .iter()
            .map(|&i| weighting::p_correct(&templates[i].transpiled.metrics, cal))
            .sum::<f64>()
            / template_indices.len().max(1) as f64;
        weighting::bound_p_correct(mean)
    }

    /// Gate indices where `param` occurs in a template's compact circuit
    /// (empty when the parameter is absent).
    fn occurrence_list(&self, template: usize, param: ParamId) -> &[usize] {
        self.templates[template]
            .occurrences
            .get(param.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Maps slice template indices onto unique local slots for one
    /// batched engine call; returns `(unique_originals, local_of_each)`.
    fn local_slots(template_indices: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut unique: Vec<usize> = Vec::new();
        let local = template_indices
            .iter()
            .map(|&ti| match unique.iter().position(|&u| u == ti) {
                Some(l) => l,
                None => {
                    unique.push(ti);
                    unique.len() - 1
                }
            })
            .collect();
        (unique, local)
    }

    /// Splits the client into its backend and the mutable compiled
    /// templates for the given unique slice indices — the borrow
    /// protocol behind every batched engine call.
    fn backend_and_templates(
        &mut self,
        unique: &[usize],
    ) -> (&mut QpuBackend, Vec<&mut CompiledTemplate>) {
        let ClientNode {
            backend, templates, ..
        } = self;
        let mut slots: Vec<Option<&mut CompiledTemplate>> = templates
            .iter_mut()
            .map(|p| Some(&mut p.compiled))
            .collect();
        let refs = unique
            .iter()
            .map(|&ti| slots[ti].take().expect("slice templates are deduplicated"))
            .collect();
        (backend, refs)
    }

    /// Executes one gradient task: the per-occurrence forward/backward
    /// shift pairs of every template in the slice go to the backend as
    /// **one** batched engine call over the client's compiled templates,
    /// then the gradient is assembled from the returned counts.
    ///
    /// # Panics
    ///
    /// Panics if the parameter vector is too short for the templates or
    /// occurrence structures disagree across the slice's templates.
    pub fn run_task(
        &mut self,
        problem: &dyn VqaProblem,
        task: GradientTask,
        params: &[f64],
        shots: usize,
        submit: SimTime,
    ) -> ClientTaskResult {
        let template_indices = problem.slice_templates(task.slice);
        let p_correct = {
            let ClientNode {
                backend, templates, ..
            } = &mut *self;
            Self::mean_p_correct(templates, backend.reported_at(submit), &template_indices)
        };

        // Occurrence structure from the first template; all templates of a
        // slice share the ansatz so the structure must agree.
        let n_occurrences = self.occurrence_list(template_indices[0], task.param).len();
        let n_templates = template_indices.len();
        if n_occurrences == 0 {
            // Parameter absent from the circuit: zero gradient, no job.
            return ClientTaskResult {
                task,
                gradient: 0.0,
                p_correct,
                submitted: submit,
                completed: submit,
                circuits_run: 0,
            };
        }

        // Build the batch: for each occurrence, forward then backward
        // shifts of every template in the slice.
        let (unique, local) = Self::local_slots(&template_indices);
        let mut runs: Vec<TemplateRun> = Vec::with_capacity(n_occurrences * 2 * n_templates);
        for k in 0..n_occurrences {
            for (j, &ti) in template_indices.iter().enumerate() {
                let occ = self.occurrence_list(ti, task.param);
                assert_eq!(
                    occ.len(),
                    n_occurrences,
                    "occurrence structure differs across slice templates"
                );
                runs.push(TemplateRun {
                    template: local[j],
                    shift: Some((occ[k], vqa::gradient::SHIFT)),
                });
            }
            for (j, &ti) in template_indices.iter().enumerate() {
                let occ = self.occurrence_list(ti, task.param);
                runs.push(TemplateRun {
                    template: local[j],
                    shift: Some((occ[k], -vqa::gradient::SHIFT)),
                });
            }
        }
        let (raw_counts, timing) = {
            let (backend, mut template_refs) = self.backend_and_templates(&unique);
            backend.execute_templates(&mut template_refs, &runs, params, shots, submit)
        };
        self.circuits_run += raw_counts.len() as u64;
        self.tasks_completed += 1;

        // Reassemble: per occurrence, the forward template counts then the
        // backward template counts.
        let occurrences = self.occurrence_list(template_indices[0], task.param);
        let first_circuit = self.templates[template_indices[0]].compiled.circuit();
        let mut gradient = 0.0;
        let per_occ = 2 * n_templates;
        for (k, &occ_idx) in occurrences.iter().enumerate() {
            let base = k * per_occ;
            let fwd_counts: Vec<Counts> = (0..n_templates)
                .map(|j| self.remap(template_indices[j], &raw_counts[base + j]))
                .collect();
            let bck_counts: Vec<Counts> = (0..n_templates)
                .map(|j| self.remap(template_indices[j], &raw_counts[base + n_templates + j]))
                .collect();
            let loss_fwd = problem.slice_loss(task.slice, &fwd_counts);
            let loss_bck = problem.slice_loss(task.slice, &bck_counts);
            let scale = first_circuit.gates()[occ_idx]
                .angle()
                .expect("occurrence is parameterized")
                .gradient_scale();
            gradient += scale * (loss_fwd - loss_bck) / 2.0;
        }

        ClientTaskResult {
            task,
            gradient,
            p_correct,
            submitted: submit,
            completed: timing.completed,
            circuits_run: runs.len(),
        }
    }

    /// Evaluates the full noisy loss at `params` by running every loss
    /// slice's templates once (one batched engine call per slice). Used
    /// for measured-energy reporting.
    pub fn evaluate_loss(
        &mut self,
        problem: &dyn VqaProblem,
        params: &[f64],
        shots: usize,
        submit: SimTime,
    ) -> (f64, SimTime) {
        let mut total = 0.0;
        let mut t = submit;
        for slice in problem.loss_slices() {
            let template_indices = problem.slice_templates(slice);
            let (unique, local) = Self::local_slots(&template_indices);
            let runs: Vec<TemplateRun> = local
                .iter()
                .map(|&l| TemplateRun {
                    template: l,
                    shift: None,
                })
                .collect();
            let (raw, timing) = {
                let (backend, mut template_refs) = self.backend_and_templates(&unique);
                backend.execute_templates(&mut template_refs, &runs, params, shots, t)
            };
            self.circuits_run += raw.len() as u64;
            let logical: Vec<Counts> = template_indices
                .iter()
                .zip(&raw)
                .map(|(&ti, c)| self.remap(ti, c))
                .collect();
            total += problem.slice_loss(slice, &logical);
            t = timing.completed;
        }
        (total, t)
    }

    fn remap(&self, template: usize, counts: &Counts) -> Counts {
        let prep = &self.templates[template];
        prep.transpiled.remap_counts(counts, &prep.logical_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::ParamId;
    use qdevice::catalog;
    use vqa::{QaoaProblem, TaskSlice, VqeProblem};

    fn quiet_backend(name: &str, seed: u64) -> QpuBackend {
        // Low-noise backend for gradient accuracy tests.
        let spec = catalog::by_name(name).unwrap();
        let mut cal = spec.calibration();
        cal.degrade(0.01, 1.0); // ~100x cleaner
        QpuBackend::new(
            &spec.name,
            spec.topology(),
            cal,
            qdevice::DriftModel::none(),
            qdevice::QueueModel::light(1.0),
            24.0,
            seed,
        )
    }

    #[test]
    fn client_transpiles_all_templates() {
        let problem = VqeProblem::heisenberg_4q();
        let client = ClientNode::new(0, catalog::by_name("bogota").unwrap().backend(1), &problem);
        let client = client.unwrap();
        assert_eq!(client.device_name(), "bogota");
        assert!(client.template_metrics(0).g2 >= 3);
    }

    #[test]
    fn gradient_matches_ideal_on_quiet_device() {
        let problem = QaoaProblem::maxcut_ring4();
        let mut client = ClientNode::new(0, quiet_backend("manila", 3), &problem).unwrap();
        let params = [0.7, 0.3];
        let task = GradientTask {
            param: ParamId(0),
            slice: TaskSlice::Full,
        };
        let r = client.run_task(&problem, task, &params, 60_000, SimTime::ZERO);
        // Ideal gradient via statevector.
        let ideal = vqa::gradient::shift_gradient(problem.ansatz(), &params, |c| {
            let sv = c.run_statevector(&[]).unwrap();
            // normalized MaxCut loss
            let h = vqa::hamiltonians::maxcut(problem.graph());
            h.expectation(&sv) / problem.graph().num_edges() as f64
        });
        assert!(
            (r.gradient - ideal[0]).abs() < 0.05,
            "device {} vs ideal {}",
            r.gradient,
            ideal[0]
        );
        // beta occurs on 4 edges -> 8 circuits in one batch.
        assert_eq!(r.circuits_run, 8);
        assert!(r.completed > r.submitted);
    }

    #[test]
    fn vqe_group_task_gradient_is_partial() {
        let problem = VqeProblem::heisenberg_4q();
        let mut client = ClientNode::new(0, quiet_backend("bogota", 5), &problem).unwrap();
        let params = problem.initial_point(2);
        let mut total = 0.0;
        for g in 0..3 {
            let task = GradientTask {
                param: ParamId(0),
                slice: TaskSlice::Group(g),
            };
            let r = client.run_task(&problem, task, &params, 120_000, SimTime::ZERO);
            total += r.gradient;
            assert_eq!(r.circuits_run, 2); // 1 occurrence x fwd/bck x 1 template
        }
        let ideal = vqa::gradient::shift_gradient(problem.ansatz(), &params, |c| {
            problem
                .hamiltonian()
                .expectation(&c.run_statevector(&[]).unwrap())
        });
        assert!(
            (total - ideal[0]).abs() < 0.12,
            "summed groups {total} vs ideal {}",
            ideal[0]
        );
    }

    #[test]
    fn p_correct_reflects_device_quality() {
        let problem = VqeProblem::heisenberg_4q();
        let good =
            ClientNode::new(0, catalog::by_name("bogota").unwrap().backend(1), &problem).unwrap();
        let bad = ClientNode::new(1, catalog::by_name("x2").unwrap().backend(1), &problem).unwrap();
        let t = SimTime::ZERO;
        assert!(good.p_correct_at(&[0], t) > bad.p_correct_at(&[0], t));
    }

    #[test]
    fn evaluate_loss_close_to_ideal_on_quiet_device() {
        let problem = VqeProblem::heisenberg_4q();
        let mut client = ClientNode::new(0, quiet_backend("manila", 9), &problem).unwrap();
        let params = problem.initial_point(4);
        let (loss, done) = client.evaluate_loss(&problem, &params, 60_000, SimTime::ZERO);
        let ideal = problem.ideal_loss(&params);
        assert!((loss - ideal).abs() < 0.2, "noisy {loss} vs ideal {ideal}");
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn missing_parameter_returns_zero_gradient() {
        // QAOA has 2 params; ask for a parameter beyond the template's
        // occurrence list by constructing a task for an unused ParamId.
        let problem = QaoaProblem::maxcut_ring4();
        let mut client = ClientNode::new(0, quiet_backend("belem", 2), &problem).unwrap();
        let r = client.run_task(
            &problem,
            GradientTask {
                param: ParamId(5),
                slice: TaskSlice::Full,
            },
            &[0.1, 0.2, 0.0, 0.0, 0.0, 0.0],
            128,
            SimTime::ZERO,
        );
        assert_eq!(r.gradient, 0.0);
        assert_eq!(r.circuits_run, 0);
    }
}
