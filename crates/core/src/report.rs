//! Training reports: per-epoch history, timing, device statistics.
//!
//! Reports carry everything the figure harnesses print: energy-vs-epoch
//! curves (Figs. 6, 9, 11, 12), epochs/hour (Fig. 6-right, Fig. 1-middle),
//! final error vs the exact reference (Fig. 1-left) and weight traces
//! (Fig. 5). Serialization is CSV/markdown via own writers — no JSON
//! serializer exists offline.

use std::fmt;

/// One recorded epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (1-based: recorded after the epoch completes).
    pub epoch: usize,
    /// Virtual hours since training start.
    pub virtual_hours: f64,
    /// Exact (ideal-simulator) loss of the parameters at this epoch.
    pub ideal_loss: f64,
}

/// Per-client statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientStats {
    /// Device name.
    pub device: String,
    /// Gradient tasks completed.
    pub tasks_completed: u64,
    /// Circuits executed.
    pub circuits_run: u64,
    /// Mean Eq. 2 score across the run.
    pub mean_p_correct: f64,
    /// Mean applied weight across the run (1.0 when unweighted).
    pub mean_weight: f64,
    /// Fraction of the run's virtual timeline the device spent executing
    /// shots (the paper's utilization motivation, Section I).
    pub utilization: f64,
}

/// Substrate-side counters of one [`PooledExecutor`](crate::PooledExecutor)
/// run.
///
/// Telemetry lives beside the [`TrainingReport`] rather than inside it:
/// the report describes the *training*, which the deterministic pool
/// reproduces byte-for-byte against the discrete-event executor, while
/// these counters describe the *machinery* (and legitimately vary with
/// core count and scheduling). Read them with
/// [`PooledExecutor::telemetry`](crate::PooledExecutor::telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// OS worker threads the pool spawned (bounded by the configured or
    /// detected parallelism — never one per client).
    pub workers_spawned: usize,
    /// High-water mark of tasks queued across every shard at once.
    pub queue_depth_max: usize,
    /// Tasks executed by a worker other than their home shard's owner.
    pub tasks_stolen: u64,
}

impl fmt::Display for PoolTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers, queue depth <= {}, {} stolen",
            self.workers_spawned, self.queue_depth_max, self.tasks_stolen
        )
    }
}

/// Engine-side counters of one session's clients.
///
/// Like [`PoolTelemetry`], engine telemetry lives *beside* the
/// [`TrainingReport`]: the report is byte-identical at any
/// [`SimParallelism`](crate::SimParallelism) setting and with or
/// without shift-pair folding, while these counters describe the
/// simulation machinery. Read with
/// [`EnsembleSession::engine_telemetry`](crate::EnsembleSession::engine_telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Lanes of engine data-parallelism per client (1 when serial).
    pub workers: usize,
    /// Forward/backward parameter-shift pairs whose shared tape prefix
    /// was evolved once instead of twice, summed over clients.
    pub folded_pairs: u64,
    /// Jobs executed across all client backends.
    pub jobs: u64,
    /// Batch groups whose shared op-tape prefix was resumed from the
    /// noise-epoch prefix cache instead of re-evolved, summed over
    /// clients (batched path only).
    pub prefix_hits: u64,
    /// Runs executed through the batched pipeline path, summed over
    /// clients.
    pub batched_jobs: u64,
    /// Lanes of the shared batched-job pipeline (0 when the batched
    /// path is off, 1 when it runs inline).
    pub pipeline_lanes: usize,
}

impl fmt::Display for EngineTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} engine lanes, {} folded pairs, {} jobs, {} pipeline lanes, {} batched jobs, {} prefix hits",
            self.workers,
            self.folded_pairs,
            self.jobs,
            self.pipeline_lanes,
            self.batched_jobs,
            self.prefix_hits
        )
    }
}

/// Per-tenant counters of one multi-tenant
/// [`FleetRuntime`](crate::fleet::FleetRuntime) run.
///
/// Like [`PoolTelemetry`], fleet telemetry lives *beside* the
/// [`TrainingReport`]s rather than inside them: each tenant's report is
/// byte-identical to what the same session would produce standalone
/// (under the [`Unshared`](crate::policy::arbiter::Unshared) arbiter),
/// while these counters describe the multiplexing machinery —
/// throughput, capacity waits and how the device pool was shared.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantTelemetry {
    /// Tenant index within the fleet run.
    pub tenant: usize,
    /// The tenant's label (defaults to `tenant<i>`).
    pub label: String,
    /// Configured fair-share weight.
    pub weight: f64,
    /// Configured priority.
    pub priority: i64,
    /// Results the tenant's master absorbed.
    pub results_absorbed: u64,
    /// Epochs the tenant completed.
    pub epochs: usize,
    /// The tenant's own virtual makespan, hours.
    pub virtual_hours: f64,
    /// Training speed in epochs per virtual hour (the per-tenant
    /// throughput the acceptance telemetry reads).
    pub epochs_per_hour: f64,
    /// Total capacity-wait accumulated by deferred dispatches, measured
    /// on the tenant's own virtual clock (hours). Zero under
    /// [`Unshared`](crate::policy::arbiter::Unshared).
    pub wait_virtual_hours: f64,
    /// Total grant rounds deferred dispatches waited for capacity —
    /// the arbiter-level wait measure (meaningful even while the
    /// tenant's virtual clock stands still, e.g. a priority-starved
    /// tenant that never got to prime).
    pub wait_rounds: u64,
    /// Grant rounds in which the tenant had pending work but nothing in
    /// flight and received no capacity — the starvation signal
    /// [`PriorityArbiter`](crate::policy::arbiter::PriorityArbiter)
    /// runs make visible.
    pub starved_rounds: u64,
    /// Tasks dispatched per fleet device (indexed by device/client id):
    /// the client-share histogram of how this tenant used the pool.
    pub client_share: Vec<u64>,
    /// Total device-queue wait this tenant's jobs accrued, hours
    /// (admission-to-start, summed over every job on every device). On
    /// the shared substrate this includes cross-tenant contention; on
    /// byte-isolated substrates it is the tenant's own base-load wait.
    pub queue_wait_hours: f64,
}

/// Per-device occupancy histogram of one fleet run on the shared
/// substrate: how much work landed on each physical device's queue
/// timeline, summed across every tenant.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceOccupancy {
    /// Device display name.
    pub device: String,
    /// Jobs booked onto the device's shared ledger (all tenants).
    pub jobs: u64,
    /// Execution hours booked onto the ledger (all tenants).
    pub booked_hours: f64,
    /// Queue-wait hours jobs spent between admission and start on this
    /// device (all tenants).
    pub queued_hours: f64,
}

/// Fleet-level telemetry of one [`FleetRuntime`](crate::fleet::FleetRuntime)
/// run: which arbiter multiplexed the pool and what each tenant got.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetTelemetry {
    /// Arbiter policy name.
    pub arbiter: String,
    /// Devices in the shared pool (= concurrent-task slots).
    pub devices: usize,
    /// Grant rounds the fleet ran.
    pub grant_rounds: u64,
    /// Per-tenant counters, indexed by tenant id.
    pub tenants: Vec<TenantTelemetry>,
    /// Per-device queue-occupancy histogram (shared substrate only;
    /// empty on byte-isolated substrates, where no cross-tenant queue
    /// timeline exists).
    pub occupancy: Vec<DeviceOccupancy>,
    /// Per-device copies the incremental occupancy view performed
    /// because a ledger's published version moved (shared substrate
    /// with queue-estimate schedulers only; 0 otherwise).
    pub snapshot_rebuilds: u64,
    /// Per-device copies the incremental occupancy view *skipped*
    /// because the ledger's version was unchanged — the allocation- and
    /// lock-free steady state of the snapshot path.
    pub snapshot_reuses: u64,
    /// Noise artifacts (reported calibrations, projections, models)
    /// built once fleet-wide in the cross-tenant shared noise cache.
    pub shared_noise_builds: u64,
    /// Shared-noise-cache lookups served from an artifact some clone
    /// (usually a co-tenant's) already built for the same noise epoch.
    pub shared_noise_hits: u64,
}

impl fmt::Display for FleetTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet[{} devices, {} arbiter]: {} tenants over {} grant rounds",
            self.devices,
            self.arbiter,
            self.tenants.len(),
            self.grant_rounds
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "  {}: {} results, {} epochs in {:.2} h ({:.2} epochs/h), \
                 waited {:.3} h / {} rounds, starved {} rounds",
                t.label,
                t.results_absorbed,
                t.epochs,
                t.virtual_hours,
                t.epochs_per_hour,
                t.wait_virtual_hours,
                t.wait_rounds,
                t.starved_rounds
            )?;
        }
        for d in &self.occupancy {
            writeln!(
                f,
                "  queue[{}]: {} jobs, {:.2} h booked, {:.3} h queued",
                d.device, d.jobs, d.booked_hours, d.queued_hours
            )?;
        }
        writeln!(
            f,
            "  hot path: snapshot_rebuilds={} snapshot_reuses={} \
             shared_noise_builds={} shared_noise_hits={}",
            self.snapshot_rebuilds,
            self.snapshot_reuses,
            self.shared_noise_builds,
            self.shared_noise_hits
        )?;
        Ok(())
    }
}

/// One tenant's lifecycle on the always-on
/// [`FleetService`](crate::fleet::service::FleetService): when it
/// arrived, when its last gather absorbed, and how it fared against its
/// SLO.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceTenantRecord {
    /// Tenant index in service admission order.
    pub tenant: usize,
    /// The tenant's label (defaults to `tenant<i>`).
    pub label: String,
    /// Arrival time on the fleet clock, virtual hours.
    pub arrival_h: f64,
    /// Retirement time on the fleet clock, virtual hours — the moment
    /// the tenant's last gather absorbed.
    pub retired_h: f64,
    /// Configured deadline budget (virtual hours from arrival), if any.
    pub deadline_h: Option<f64>,
    /// Whether the deadline was met (`None` when no SLO was set):
    /// makespan on the tenant's own clock within the budget.
    pub deadline_met: Option<bool>,
    /// Epochs the tenant completed before retiring.
    pub epochs: usize,
}

/// Service-level telemetry of one
/// [`FleetService`](crate::fleet::service::FleetService) lifetime:
/// admissions, retirements, SLO outcomes, idle time and sustained
/// throughput on the fleet clock.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceTelemetry {
    /// Arbiter policy name.
    pub arbiter: String,
    /// Devices in the shared pool (= concurrent-task slots).
    pub devices: usize,
    /// Tenants admitted over the service lifetime.
    pub admissions: usize,
    /// Tenants retired (every admission retires by `close()`).
    pub retirements: usize,
    /// Tenants whose configured deadline was met.
    pub deadline_hits: usize,
    /// Tenants whose configured deadline was missed.
    pub deadline_misses: usize,
    /// Virtual hours the fleet sat empty between a retirement and the
    /// next arrival.
    pub idle_virtual_hours: f64,
    /// Fleet-clock span from the first arrival to the last retirement,
    /// virtual hours.
    pub span_virtual_hours: f64,
    /// Epochs completed across all tenants per fleet-clock virtual
    /// hour — the service's sustained throughput.
    pub sustained_epochs_per_hour: f64,
    /// Per-tenant lifecycle records, indexed by admission order.
    pub tenants: Vec<ServiceTenantRecord>,
}

impl fmt::Display for ServiceTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service[{} devices, {} arbiter]: {} admitted, {} retired; \
             {} deadline hits / {} misses; idle {:.2} h of {:.2} h span; \
             sustained {:.2} epochs/h",
            self.devices,
            self.arbiter,
            self.admissions,
            self.retirements,
            self.deadline_hits,
            self.deadline_misses,
            self.idle_virtual_hours,
            self.span_virtual_hours,
            self.sustained_epochs_per_hour
        )?;
        for t in &self.tenants {
            write!(
                f,
                "  {}: arrived {:.2} h, retired {:.2} h, {} epochs",
                t.label, t.arrival_h, t.retired_h, t.epochs
            )?;
            match (t.deadline_h, t.deadline_met) {
                (Some(d), Some(true)) => writeln!(f, ", met {d:.2} h deadline")?,
                (Some(d), _) => writeln!(f, ", missed {d:.2} h deadline")?,
                _ => writeln!(f)?,
            }
        }
        Ok(())
    }
}

/// What happened to one client's ensemble membership, as recorded in
/// [`PolicyTelemetry::eviction_log`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipChange {
    /// The health policy benched the client.
    Evicted,
    /// A recalibration probe cleared the client to rejoin.
    Readmitted,
}

/// One eviction or re-admission event on the virtual timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct EvictionEvent {
    /// The affected client.
    pub client: usize,
    /// Virtual hours at the decision.
    pub virtual_hours: f64,
    /// Whether the client left or rejoined the rotation.
    pub change: MembershipChange,
}

/// Where one client's applied weights came from: which weighting policy
/// produced them and their observed range. One entry per client.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightProvenance {
    /// Client id.
    pub client: usize,
    /// Name of the [`Weighting`](crate::policy::Weighting) policy that
    /// produced every weight this client's gradients were scaled by.
    pub policy: String,
    /// Results absorbed (weights applied) for this client.
    pub samples: u64,
    /// Smallest applied weight (1.0 when no result was absorbed).
    pub min_weight: f64,
    /// Largest applied weight (1.0 when no result was absorbed).
    pub max_weight: f64,
}

/// Per-policy telemetry of one training run: which policy stack ran,
/// what the health layer did, and where each client's weights came
/// from. Produced by the master, so it is part of the byte-equivalence
/// surface the deterministic executors must reproduce exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyTelemetry {
    /// Scheduler policy name.
    pub scheduler: String,
    /// Weighting policy name.
    pub weighting: String,
    /// Health policy name.
    pub health: String,
    /// Total evictions across the run.
    pub evictions: u64,
    /// Total re-admissions across the run.
    pub readmissions: u64,
    /// Every membership change in decision order.
    pub eviction_log: Vec<EvictionEvent>,
    /// Per-client weight provenance.
    pub weight_provenance: Vec<WeightProvenance>,
}

/// One weight-trace sample: the ensemble's weights at a virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightSample {
    /// Virtual hours since start.
    pub virtual_hours: f64,
    /// Weight per client, indexed by client id.
    pub weights: Vec<f64>,
}

/// The full record of a training run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingReport {
    /// Problem name.
    pub problem: String,
    /// Trainer label (`eqc`, `single:<device>`, `ideal`, ...).
    pub trainer: String,
    /// Epochs completed.
    pub epochs: usize,
    /// Per-epoch history.
    pub history: Vec<EpochRecord>,
    /// Final parameters.
    pub final_params: Vec<f64>,
    /// Final ideal loss.
    pub final_loss: f64,
    /// Exact optimum for error normalization.
    pub reference_minimum: f64,
    /// Total virtual hours of the run.
    pub total_hours: f64,
    /// Per-client statistics (one entry for single-device runs).
    pub clients: Vec<ClientStats>,
    /// Weight trace over time (empty when unweighted).
    pub weight_trace: Vec<WeightSample>,
    /// Parameter updates applied (gathers completed).
    pub updates_applied: u64,
    /// The (cycle, parameter) key of every applied update, in
    /// application order — the executor-equivalence tests compare these
    /// across substrates.
    pub update_log: Vec<(usize, usize)>,
    /// Maximum observed update staleness (ASGD delay `D` of Eq. 12-14).
    pub max_staleness: usize,
    /// Mean observed update staleness.
    pub mean_staleness: f64,
    /// The policy stack that drove the run and what it did.
    pub policy: PolicyTelemetry,
}

impl TrainingReport {
    /// Relative error of the final loss vs the reference minimum, in
    /// percent: `|final - ref| / |ref| * 100` (how Fig. 1/9 report error).
    pub fn error_vs_reference_pct(&self) -> f64 {
        if self.reference_minimum == 0.0 {
            return (self.final_loss.abs()) * 100.0;
        }
        (self.final_loss - self.reference_minimum).abs() / self.reference_minimum.abs() * 100.0
    }

    /// Mean training speed in epochs per virtual hour.
    pub fn epochs_per_hour(&self) -> f64 {
        if self.total_hours <= 0.0 {
            return f64::INFINITY;
        }
        self.epochs as f64 / self.total_hours
    }

    /// First epoch whose ideal loss stays within `tol` of the best loss
    /// seen over the rest of the run — a simple convergence-epoch
    /// estimator for the "converges at epoch N" comparisons.
    pub fn convergence_epoch(&self, tol: f64) -> Option<usize> {
        if self.history.is_empty() {
            return None;
        }
        let best = self
            .history
            .iter()
            .map(|r| r.ideal_loss)
            .fold(f64::INFINITY, f64::min);
        self.history
            .iter()
            .find(|r| r.ideal_loss <= best + tol)
            .map(|r| r.epoch)
    }

    /// Mean ideal loss over the final `n` epochs (converged-energy
    /// estimate, robust to per-epoch shot noise).
    pub fn converged_loss(&self, n: usize) -> f64 {
        if self.history.is_empty() {
            return self.final_loss;
        }
        let tail = &self.history[self.history.len().saturating_sub(n)..];
        tail.iter().map(|r| r.ideal_loss).sum::<f64>() / tail.len() as f64
    }

    /// Relative error of [`TrainingReport::converged_loss`] vs the
    /// reference, percent.
    pub fn converged_error_pct(&self, n: usize) -> f64 {
        if self.reference_minimum == 0.0 {
            return self.converged_loss(n).abs() * 100.0;
        }
        (self.converged_loss(n) - self.reference_minimum).abs() / self.reference_minimum.abs()
            * 100.0
    }

    /// Renders the epoch history as CSV (`epoch,hours,ideal_loss`).
    pub fn history_csv(&self) -> String {
        let mut out = String::from("epoch,virtual_hours,ideal_loss\n");
        for r in &self.history {
            out.push_str(&format!(
                "{},{:.6},{:.8}\n",
                r.epoch, r.virtual_hours, r.ideal_loss
            ));
        }
        out
    }

    /// Renders a one-line markdown summary row:
    /// `| trainer | epochs | eph | final | err% |`.
    pub fn summary_row(&self) -> String {
        format!(
            "| {} | {} | {:.3} | {:.4} | {:.3}% |",
            self.trainer,
            self.epochs,
            self.epochs_per_hour(),
            self.final_loss,
            self.error_vs_reference_pct()
        )
    }
}

impl fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on {}: {} epochs in {:.2} h ({:.2} epochs/h)",
            self.trainer,
            self.problem,
            self.epochs,
            self.total_hours,
            self.epochs_per_hour()
        )?;
        writeln!(
            f,
            "  final loss {:.5} (reference {:.5}, error {:.3}%)",
            self.final_loss,
            self.reference_minimum,
            self.error_vs_reference_pct()
        )?;
        for c in &self.clients {
            writeln!(
                f,
                "  {}: {} tasks, {} circuits, mean P_correct {:.4}, mean weight {:.3}, util {:.1}%",
                c.device,
                c.tasks_completed,
                c.circuits_run,
                c.mean_p_correct,
                c.mean_weight,
                c.utilization * 100.0
            )?;
        }
        if self.policy.evictions > 0 || self.policy.readmissions > 0 {
            writeln!(
                f,
                "  policy {}/{}/{}: {} evictions, {} readmissions",
                self.policy.scheduler,
                self.policy.weighting,
                self.policy.health,
                self.policy.evictions,
                self.policy.readmissions
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TrainingReport {
        TrainingReport {
            problem: "test".into(),
            trainer: "eqc".into(),
            epochs: 4,
            history: vec![
                EpochRecord {
                    epoch: 1,
                    virtual_hours: 0.5,
                    ideal_loss: -1.0,
                },
                EpochRecord {
                    epoch: 2,
                    virtual_hours: 1.0,
                    ideal_loss: -3.0,
                },
                EpochRecord {
                    epoch: 3,
                    virtual_hours: 1.5,
                    ideal_loss: -3.9,
                },
                EpochRecord {
                    epoch: 4,
                    virtual_hours: 2.0,
                    ideal_loss: -3.95,
                },
            ],
            final_params: vec![0.0; 4],
            final_loss: -3.95,
            reference_minimum: -4.0,
            total_hours: 2.0,
            clients: vec![],
            weight_trace: vec![],
            updates_applied: 16,
            update_log: (0..4).flat_map(|c| (0..4).map(move |p| (c, p))).collect(),
            max_staleness: 3,
            mean_staleness: 1.2,
            policy: PolicyTelemetry {
                scheduler: "cyclic".into(),
                weighting: "fidelity".into(),
                health: "always-healthy".into(),
                evictions: 0,
                readmissions: 0,
                eviction_log: vec![],
                weight_provenance: vec![],
            },
        }
    }

    #[test]
    fn error_and_speed() {
        let r = sample_report();
        assert!((r.error_vs_reference_pct() - 1.25).abs() < 1e-9);
        assert!((r.epochs_per_hour() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn convergence_epoch_detection() {
        let r = sample_report();
        assert_eq!(r.convergence_epoch(0.1), Some(3));
        assert_eq!(r.convergence_epoch(5.0), Some(1));
    }

    #[test]
    fn converged_loss_tail_mean() {
        let r = sample_report();
        assert!((r.converged_loss(2) + 3.925).abs() < 1e-12);
        assert!((r.converged_error_pct(2) - 1.875).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_report().history_csv();
        assert!(csv.starts_with("epoch,virtual_hours,ideal_loss\n"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = sample_report().to_string();
        assert!(s.contains("epochs/h"));
        assert!(s.contains("error 1.250%"));
    }

    #[test]
    fn service_telemetry_display_names_slo_outcomes() {
        let t = ServiceTelemetry {
            arbiter: "edf".into(),
            devices: 4,
            admissions: 2,
            retirements: 2,
            deadline_hits: 1,
            deadline_misses: 1,
            idle_virtual_hours: 0.5,
            span_virtual_hours: 12.0,
            sustained_epochs_per_hour: 0.66,
            tenants: vec![
                ServiceTenantRecord {
                    tenant: 0,
                    label: "met".into(),
                    arrival_h: 0.0,
                    retired_h: 4.0,
                    deadline_h: Some(5.0),
                    deadline_met: Some(true),
                    epochs: 4,
                },
                ServiceTenantRecord {
                    tenant: 1,
                    label: "blown".into(),
                    arrival_h: 1.0,
                    retired_h: 12.0,
                    deadline_h: Some(2.0),
                    deadline_met: Some(false),
                    epochs: 4,
                },
            ],
        };
        let s = t.to_string();
        assert!(s.contains("1 deadline hits / 1 misses"));
        assert!(s.contains("met 5.00 h deadline"));
        assert!(s.contains("missed 2.00 h deadline"));
        assert!(s.contains("idle 0.50 h"));
    }
}
