//! # eqc-core — the EQC framework (the paper's primary contribution)
//!
//! Ensembled Quantum Computing for variational quantum algorithms
//! (Stein et al., ISCA 2022): instead of training a VQA against one noisy
//! QPU, a master node asynchronously distributes gradient tasks across a
//! *quantum ensemble*, weighting each device's contribution by an analytic
//! quality score computed from its transpiled circuit and live calibration
//! (Eq. 2).
//!
//! * [`client`] — the client node (Algorithm 2): transpile once, serve
//!   batched shift-rule jobs, report gradients + `P_correct`;
//! * [`trainer`] — the master node (Algorithm 1) over a deterministic
//!   discrete-event executor, plus single-device and ideal baselines;
//! * [`threaded`] — the same master/client protocol over real OS threads
//!   (the Ray.io analogue);
//! * [`weighting`] — Eq. 2 and the bounded linear weight normalization of
//!   Figs. 5/9/12;
//! * [`convergence`] — the appendix ASGD bound (Eq. 14);
//! * [`stats`] — the estimators behind Fig. 4 (R^2, Pearson, p-value);
//! * [`report`] — per-epoch histories and device statistics for every
//!   figure harness.
//!
//! ## Quickstart
//!
//! ```
//! use eqc_core::{ClientNode, EqcConfig, EqcTrainer};
//! use vqa::QaoaProblem;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let clients: Vec<ClientNode> = ["belem", "manila"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, name)| {
//!         let backend = qdevice::catalog::by_name(name).unwrap().backend(i as u64);
//!         ClientNode::new(i, backend, &problem).unwrap()
//!     })
//!     .collect();
//! let config = EqcConfig::paper_qaoa().with_epochs(3).with_shots(256);
//! let report = EqcTrainer::new(config).train(&problem, clients);
//! assert_eq!(report.epochs, 3);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod convergence;
pub mod report;
pub mod stats;
pub mod threaded;
pub mod trainer;
pub mod weighting;

pub use client::{ClientNode, ClientTaskResult};
pub use config::EqcConfig;
pub use convergence::ConvergenceParams;
pub use report::{ClientStats, EpochRecord, TrainingReport, WeightSample};
pub use threaded::train_threaded;
pub use trainer::{ideal_backend, train_ideal, EqcTrainer, SingleDeviceTrainer, SyncEnsembleTrainer};
pub use weighting::{normalize_weights, p_correct, WeightBounds};
