//! # eqc-core — the EQC framework (the paper's primary contribution)
//!
//! Ensembled Quantum Computing for variational quantum algorithms
//! (Stein et al., ISCA 2022): instead of training a VQA against one noisy
//! QPU, a master node asynchronously distributes gradient tasks across a
//! *quantum ensemble*, weighting each device's contribution by an analytic
//! quality score computed from its transpiled circuit and live calibration
//! (Eq. 2).
//!
//! ## The session API
//!
//! All training flows through one composable surface:
//!
//! 1. [`Ensemble::builder`] describes the fleet — catalog devices by
//!    name, custom [`QpuBackend`](qdevice::QpuBackend)s, or the ideal
//!    simulator — plus an [`EqcConfig`] and seeds;
//! 2. [`Ensemble::session`] binds a [`VqaProblem`](vqa::VqaProblem)
//!    (each device transpiles the problem's templates once — Algorithm 2);
//! 3. an [`Executor`] drains the session into a [`TrainingReport`].
//!
//! ```
//! use eqc_core::{Ensemble, EqcConfig};
//! use vqa::QaoaProblem;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let report = Ensemble::builder()
//!     .device("belem")
//!     .device("manila")
//!     .config(EqcConfig::paper_qaoa().with_epochs(3).with_shots(256))
//!     .build()?
//!     .train(&problem)?;
//! assert_eq!(report.epochs, 3);
//! # Ok::<(), eqc_core::EqcError>(())
//! ```
//!
//! ## Executors — the extension axis
//!
//! The execution substrate is a strategy, not a fork of the codebase:
//! every executor drives the same extracted master loop
//! ([`MasterLoop`]: cyclic schedule, per-parameter gathers, weighted
//! ASGD updates, staleness tracking), so a future async / sharded /
//! remote substrate is a new [`Executor`] impl.
//!
//! * [`DiscreteEventExecutor`] — deterministic virtual time (default);
//! * [`ThreadedExecutor`] — one OS thread per client (Ray.io analogue);
//! * [`PooledExecutor`] — any number of clients over a bounded worker
//!   pool; deterministic mode is byte-identical to the discrete-event
//!   executor, which makes 100–1000 client fleets
//!   ([`qdevice::catalog::fleet`]) reproducible *and* parallel;
//! * [`SequentialExecutor`] — the single-device baseline and the
//!   synchronous-ensemble ablation.
//!
//! Failures are values: every constructor and training entry point
//! returns [`EqcError`] instead of panicking.
//!
//! ## Policies — the master's decision axes
//!
//! Orthogonal to *where* tasks run is *what the master decides*: which
//! client gets the next slice ([`Scheduler`]: [`Cyclic`],
//! [`LeastLoaded`]), how much each gradient counts ([`Weighting`]:
//! [`FidelityWeighted`], [`EquiEnsemble`], [`StalenessDecay`]), and
//! whether a drifting client keeps participating ([`ClientHealth`]:
//! [`AlwaysHealthy`], [`DriftEviction`] with recalibration
//! re-admission). A [`PolicyConfig`] bundles one of each; the default
//! stack reproduces the paper's Algorithm 1 byte for byte.
//!
//! ## Modules
//!
//! * [`ensemble`] — the builder/session surface;
//! * [`executor`] — the [`Executor`] trait and its substrates;
//! * [`pool`] — the bounded worker-pool substrate behind
//!   [`PooledExecutor`];
//! * [`master`] — the shared master loop (Algorithm 1);
//! * [`policy`] — the pluggable scheduler / weighting / health layer
//!   the master consults;
//! * [`client`] — the client node (Algorithm 2): transpile once, serve
//!   batched shift-rule jobs, report gradients + `P_correct`;
//! * [`weighting`] — Eq. 2 and the bounded linear weight normalization of
//!   Figs. 5/9/12;
//! * [`convergence`] — the appendix ASGD bound (Eq. 14);
//! * [`stats`] — the estimators behind Fig. 4 (R^2, Pearson, p-value);
//! * [`report`] — per-epoch histories and device statistics for every
//!   figure harness;
//! * [`trainer`] / [`threaded`] — the pre-0.2 entry points, deprecated
//!   shims over the session API.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod convergence;
pub mod ensemble;
pub mod error;
pub mod executor;
pub mod master;
pub mod policy;
pub mod pool;
pub mod report;
pub mod stats;
pub mod threaded;
pub mod trainer;
pub mod weighting;

pub use client::{ClientNode, ClientTaskResult};
pub use config::{EqcConfig, PolicyConfig, PoolConfig};
pub use convergence::ConvergenceParams;
pub use ensemble::{Ensemble, EnsembleBuilder, EnsembleSession};
pub use error::EqcError;
pub use executor::{DiscreteEventExecutor, Executor, SequentialExecutor, ThreadedExecutor};
pub use master::{Assignment, MasterLoop};
pub use policy::{
    AlwaysHealthy, ClientHealth, Cyclic, DriftEviction, EquiEnsemble, FidelityWeighted,
    HealthContext, HealthVerdict, LeastLoaded, ScheduleContext, Scheduler, StalenessDecay,
    WeightContext, WeightDecision, Weighting,
};
pub use pool::PooledExecutor;
pub use report::{
    ClientStats, EpochRecord, EvictionEvent, MembershipChange, PolicyTelemetry, PoolTelemetry,
    TrainingReport, WeightProvenance, WeightSample,
};
pub use trainer::ideal_backend;
pub use weighting::{normalize_weights, p_correct, WeightBounds};

#[allow(deprecated)]
pub use threaded::train_threaded;
#[allow(deprecated)]
pub use trainer::{train_ideal, EqcTrainer, SingleDeviceTrainer, SyncEnsembleTrainer};
