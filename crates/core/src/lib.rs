//! # eqc-core — the EQC framework (the paper's primary contribution)
//!
//! Ensembled Quantum Computing for variational quantum algorithms
//! (Stein et al., ISCA 2022): instead of training a VQA against one noisy
//! QPU, a master node asynchronously distributes gradient tasks across a
//! *quantum ensemble*, weighting each device's contribution by an analytic
//! quality score computed from its transpiled circuit and live calibration
//! (Eq. 2).
//!
//! ## The session API
//!
//! All training flows through one composable surface:
//!
//! 1. [`Ensemble::builder`] describes the fleet — catalog devices by
//!    name, custom [`QpuBackend`](qdevice::QpuBackend)s, or the ideal
//!    simulator — plus an [`EqcConfig`] and seeds;
//! 2. [`Ensemble::session`] binds a [`VqaProblem`](vqa::VqaProblem)
//!    (each device transpiles the problem's templates once — Algorithm 2);
//! 3. an [`Executor`] drains the session into a [`TrainingReport`].
//!
//! ```
//! use eqc_core::{Ensemble, EqcConfig};
//! use vqa::QaoaProblem;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let report = Ensemble::builder()
//!     .device("belem")
//!     .device("manila")
//!     .config(EqcConfig::paper_qaoa().with_epochs(3).with_shots(256))
//!     .build()?
//!     .train(&problem)?;
//! assert_eq!(report.epochs, 3);
//! # Ok::<(), eqc_core::EqcError>(())
//! ```
//!
//! ## Executors — the extension axis
//!
//! The execution substrate is a strategy, not a fork of the codebase:
//! every executor drives the same extracted master loop
//! ([`MasterLoop`]: cyclic schedule, per-parameter gathers, weighted
//! ASGD updates, staleness tracking), so a future async / sharded /
//! remote substrate is a new [`Executor`] impl.
//!
//! * [`DiscreteEventExecutor`] — deterministic virtual time (default);
//! * [`ThreadedExecutor`] — one OS thread per client (Ray.io analogue);
//! * [`PooledExecutor`] — any number of clients over a bounded worker
//!   pool; deterministic mode is byte-identical to the discrete-event
//!   executor, which makes 100–1000 client fleets
//!   ([`qdevice::catalog::fleet`]) reproducible *and* parallel;
//! * [`SequentialExecutor`] — the single-device baseline and the
//!   synchronous-ensemble ablation.
//!
//! Failures are values: every constructor and training entry point
//! returns [`EqcError`] instead of panicking.
//!
//! ## Policies — the master's decision axes
//!
//! Orthogonal to *where* tasks run is *what the master decides*: which
//! client gets the next slice ([`Scheduler`]: [`Cyclic`],
//! [`LeastLoaded`]), how much each gradient counts ([`Weighting`]:
//! [`FidelityWeighted`], [`EquiEnsemble`], [`StalenessDecay`]), and
//! whether a drifting client keeps participating ([`ClientHealth`]:
//! [`AlwaysHealthy`], [`DriftEviction`] with recalibration
//! re-admission). A [`PolicyConfig`] bundles one of each; the default
//! stack reproduces the paper's Algorithm 1 byte for byte.
//!
//! ## The multi-tenant fleet
//!
//! A standalone session owns its clients for the whole run; the
//! [`FleetRuntime`] inverts that: the fleet is the long-lived resource
//! that owns the device pool, sessions are *tenants* that borrow
//! capacity ([`FleetRuntime::admit`]), and a
//! [`TenantArbiter`](policy::TenantArbiter) ([`Unshared`],
//! [`FairShare`], [`PriorityArbiter`]) arbitrates fleet capacity
//! between them. Single-tenant fleet runs are byte-identical to
//! standalone sessions — the deterministic executors are in fact thin
//! fleet-of-one wrappers over the same drive loop.
//!
//! ## Modules
//!
//! * [`ensemble`] — the builder/session surface;
//! * [`fleet`] — the multi-tenant [`FleetRuntime`] and its drive loop;
//! * [`executor`] — the [`Executor`] trait and its substrates;
//! * [`pool`] — the bounded worker-pool substrate behind
//!   [`PooledExecutor`] and the pooled fleet;
//! * [`master`] — the shared master loop (Algorithm 1);
//! * [`policy`] — the pluggable scheduler / weighting / health /
//!   arbiter layer;
//! * [`client`] — the client node (Algorithm 2): transpile once, serve
//!   batched shift-rule jobs, report gradients + `P_correct`;
//! * [`weighting`] — Eq. 2 and the bounded linear weight normalization of
//!   Figs. 5/9/12;
//! * [`convergence`] — the appendix ASGD bound (Eq. 14);
//! * [`stats`] — the estimators behind Fig. 4 (R^2, Pearson, p-value);
//! * [`report`] — per-epoch histories, device statistics and fleet
//!   telemetry for every figure harness.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod convergence;
pub mod ensemble;
pub mod error;
pub mod executor;
pub mod fleet;
pub mod master;
pub mod policy;
pub mod pool;
pub mod report;
pub mod stats;
pub mod weighting;

pub use client::{ClientNode, ClientTaskResult};
pub use config::{
    EqcConfig, PolicyConfig, PoolConfig, ServiceConfig, SimParallelism, TenantConfig,
};
pub use convergence::ConvergenceParams;
pub use ensemble::{ideal_backend, Ensemble, EnsembleBuilder, EnsembleSession};
pub use error::EqcError;
pub use executor::{DiscreteEventExecutor, Executor, SequentialExecutor, ThreadedExecutor};
pub use fleet::{
    FleetBuilder, FleetOutcome, FleetRuntime, FleetService, ServiceOutcome, TenantHandle, TenantId,
};
pub use master::{Assignment, MasterLoop};
pub use policy::{
    AlwaysHealthy, ArbiterContext, ClientHealth, Composed, ContentionAware, Cyclic, DriftEviction,
    EarliestDeadlineFirst, EquiEnsemble, FairShare, FidelityWeighted, FleetOccupancy,
    HealthContext, HealthVerdict, LeastLoaded, LookaheadLeastLoaded, PriorityArbiter,
    ScheduleContext, Scheduler, StalenessDecay, TenantArbiter, TenantLoad, Unshared, WeightContext,
    WeightDecision, Weighting,
};
pub use pool::PooledExecutor;
pub use report::{
    ClientStats, DeviceOccupancy, EngineTelemetry, EpochRecord, EvictionEvent, FleetTelemetry,
    MembershipChange, PolicyTelemetry, PoolTelemetry, ServiceTelemetry, ServiceTenantRecord,
    TenantTelemetry, TrainingReport, WeightProvenance, WeightSample,
};
pub use weighting::{normalize_weights, p_correct, WeightBounds};
