//! Typed errors for the EQC framework.
//!
//! Every public constructor and training entry point returns
//! [`EqcError`] instead of panicking: invalid configurations, empty
//! ensembles, unknown catalog devices and transpilation failures all
//! surface as values the caller can match on.

use qdevice::DeviceError;
use std::fmt;
use transpile::TranspileError;

/// Everything that can go wrong building or training an ensemble.
#[derive(Clone, Debug, PartialEq)]
pub enum EqcError {
    /// A configuration field is out of range (the message names it).
    InvalidConfig(String),
    /// The ensemble was built without any devices.
    EmptyEnsemble,
    /// The problem defines no parameters or no gradient tasks, so no
    /// training schedule exists.
    EmptyProblem(String),
    /// A device name was not found in the [`qdevice::catalog`].
    UnknownDevice(String),
    /// A problem template does not fit a device's topology.
    Transpile {
        /// The device whose topology rejected the circuit.
        device: String,
        /// The underlying transpiler error.
        source: TranspileError,
    },
    /// A device description was invalid (drift episode, queue model or
    /// multiprogramming configuration out of range).
    Device(DeviceError),
    /// The session already ran; build a fresh session to train again.
    SessionConsumed,
    /// The fleet was asked to run with no admitted tenants.
    NoTenants,
    /// The master was asked for an assignment but its cyclic schedule
    /// holds no tasks.
    EmptySchedule,
    /// A result was filed for a `(cycle, parameter)` gather that was
    /// never registered by a dispatch.
    UnknownGather {
        /// Cycle index of the orphaned result.
        cycle: usize,
        /// Parameter index of the orphaned result.
        param: usize,
    },
    /// A report was requested over a different number of clients than
    /// the master was built for.
    ClientCountMismatch {
        /// Clients the master tracks.
        expected: usize,
        /// Clients handed to the report.
        got: usize,
    },
    /// A [`TenantId`](crate::fleet::TenantId) minted by one tenant
    /// batch was used on the outcome of another batch.
    StaleTenant {
        /// Batch generation the id was minted in.
        held: u64,
        /// Batch generation of the outcome it was used on.
        outcome: u64,
    },
    /// The service's admission queue is at its configured capacity.
    AdmissionQueueFull {
        /// The `max_pending` bound that rejected the admission.
        capacity: usize,
    },
    /// A shared per-device occupancy ledger's mutex was poisoned — a
    /// thread panicked while holding it, so its queue timeline can no
    /// longer be trusted.
    LedgerPoisoned {
        /// Pool index of the device whose ledger is poisoned.
        device: usize,
    },
    /// An internal invariant broke (e.g. a worker thread panicked).
    Internal(String),
}

impl From<DeviceError> for EqcError {
    fn from(source: DeviceError) -> Self {
        EqcError::Device(source)
    }
}

impl fmt::Display for EqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EqcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EqcError::EmptyEnsemble => write!(f, "ensemble has no devices"),
            EqcError::EmptyProblem(name) => {
                write!(f, "problem {name} defines no trainable schedule")
            }
            EqcError::UnknownDevice(name) => {
                write!(f, "device {name:?} is not in the catalog")
            }
            EqcError::Transpile { device, source } => {
                write!(f, "transpilation failed for {device}: {source}")
            }
            EqcError::Device(source) => write!(f, "invalid device description: {source}"),
            EqcError::SessionConsumed => {
                write!(f, "session already trained; create a new session")
            }
            EqcError::NoTenants => {
                write!(f, "fleet has no admitted tenants; call admit first")
            }
            EqcError::EmptySchedule => {
                write!(f, "the cyclic schedule holds no tasks to assign")
            }
            EqcError::UnknownGather { cycle, param } => {
                write!(
                    f,
                    "result filed for unregistered gather (cycle {cycle}, parameter {param})"
                )
            }
            EqcError::ClientCountMismatch { expected, got } => {
                write!(
                    f,
                    "report requested over {got} clients but the master tracks {expected}"
                )
            }
            EqcError::StaleTenant { held, outcome } => {
                write!(
                    f,
                    "TenantId from fleet batch {held} used on the outcome of batch {outcome}"
                )
            }
            EqcError::AdmissionQueueFull { capacity } => {
                write!(
                    f,
                    "admission queue is at capacity ({capacity} tenants pending); drain first"
                )
            }
            EqcError::LedgerPoisoned { device } => {
                write!(
                    f,
                    "occupancy ledger of device {device} is poisoned (a holder panicked)"
                )
            }
            EqcError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for EqcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EqcError::Transpile { source, .. } => Some(source),
            EqcError::Device(source) => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(EqcError::EmptyEnsemble.to_string().contains("no devices"));
        assert!(EqcError::UnknownDevice("atlantis".into())
            .to_string()
            .contains("atlantis"));
        assert!(EqcError::InvalidConfig("epochs must be positive".into())
            .to_string()
            .contains("epochs"));
        assert_eq!(
            EqcError::StaleTenant {
                held: 0,
                outcome: 2
            }
            .to_string(),
            "TenantId from fleet batch 0 used on the outcome of batch 2"
        );
        assert!(EqcError::AdmissionQueueFull { capacity: 8 }
            .to_string()
            .contains("8 tenants pending"));
    }

    #[test]
    fn errors_compare_and_clone() {
        let e = EqcError::UnknownDevice("x".into());
        assert_eq!(e.clone(), e);
        assert_ne!(e, EqcError::EmptyEnsemble);
    }
}
