//! The QPU quality model and adaptive weighting system (Section IV).
//!
//! Eq. 2 of the paper scores a (device, transpiled circuit) pair by the
//! probability that no error event occurs:
//!
//! ```text
//! P_correct = exp(-CD * (mu_G1 + mu_G2)/2 / (T1 * T2))
//!           * (1 - gamma)^G1 * (1 - beta)^G2 * (1 - omega)^M
//! ```
//!
//! with `CD` the critical depth, `mu` the mean gate times, `gamma`/`beta`
//! the 1q/CNOT errors, `omega` the readout error and `M` the measurement
//! count. The ensemble then linearly rescales all clients' `P_correct`
//! values into a configured band (e.g. `[0.5, 1.5]`), which multiplies the
//! ASGD learning rate per Eq. 4.
//!
//! Units note: the paper leaves Eq. 2 dimensionless; we evaluate the
//! exponent with gate times and T1/T2 both in microseconds, under which
//! the fidelity products dominate (consistent with Fig. 4's strong
//! correlation between error rates and gate counts).

use crate::error::EqcError;
use qdevice::Calibration;
use transpile::CircuitMetrics;

/// Computes the paper's Eq. 2 for a transpiled circuit on a device
/// calibration, clamped into `[0, 1]`.
///
/// # Examples
///
/// ```
/// use eqc_core::weighting::p_correct;
/// use qdevice::Calibration;
/// use transpile::CircuitMetrics;
///
/// let cal = Calibration::uniform(4, 100.0, 80.0, 0.001, 0.01, 0.02);
/// let light = CircuitMetrics { g1: 4, g2: 2, measurements: 4, critical_depth: 5, depth: 6, swaps_inserted: 0 };
/// let heavy = CircuitMetrics { g1: 24, g2: 18, measurements: 4, critical_depth: 30, depth: 40, swaps_inserted: 5 };
/// assert!(p_correct(&light, &cal) > p_correct(&heavy, &cal));
/// ```
pub fn p_correct(metrics: &CircuitMetrics, cal: &Calibration) -> f64 {
    let mu_us = (cal.gate_time_1q_ns + cal.gate_time_2q_ns) / 2.0 * 1e-3;
    let t1 = cal.mean_t1_us().max(1e-9);
    let t2 = cal.mean_t2_us().max(1e-9);
    let coherence = (-(metrics.critical_depth as f64) * mu_us / (t1 * t2)).exp();
    let gamma = cal.mean_gate_error_1q().clamp(0.0, 1.0);
    let beta = cal.mean_cx_error().clamp(0.0, 1.0);
    let omega = cal.mean_readout_error().clamp(0.0, 1.0);
    let fidelity = (1.0 - gamma).powi(metrics.g1 as i32)
        * (1.0 - beta).powi(metrics.g2 as i32)
        * (1.0 - omega).powi(metrics.measurements as i32);
    (coherence * fidelity).clamp(0.0, 1.0)
}

/// The inclusive weight band the ensemble's `P_correct` values are
/// rescaled into (the paper sweeps `[0.75,1.25]`, `[0.5,1.5]`,
/// `[0.25,1.75]` in Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightBounds {
    /// Weight given to the worst device.
    pub lo: f64,
    /// Weight given to the best device.
    pub hi: f64,
}

impl WeightBounds {
    /// Creates a band.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] if `lo` is negative, non-finite, or
    /// exceeds `hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, EqcError> {
        if !(lo >= 0.0 && lo.is_finite()) {
            return Err(EqcError::InvalidConfig(format!(
                "weight band lower bound must be non-negative and finite, got {lo}"
            )));
        }
        if !(hi >= lo && hi.is_finite()) {
            return Err(EqcError::InvalidConfig(format!(
                "weight band must satisfy lo <= hi < inf, got [{lo}, {hi}]"
            )));
        }
        Ok(WeightBounds { lo, hi })
    }

    /// The midpoint of the band (weight used when devices are
    /// indistinguishable).
    pub fn midpoint(self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// The paper's default band `[0.5, 1.5]`.
    pub fn default_band() -> Self {
        WeightBounds { lo: 0.5, hi: 1.5 }
    }
}

/// Linearly rescales a set of `P_correct` values into the band: the
/// minimum maps to `lo`, the maximum to `hi` ("the P_correct values over
/// all client nodes are normalized and shifted", Section V-D). Degenerate
/// spreads map everything to the midpoint.
pub fn normalize_weights(p_corrects: &[f64], bounds: WeightBounds) -> Vec<f64> {
    if p_corrects.is_empty() {
        return Vec::new();
    }
    let min = p_corrects.iter().copied().fold(f64::INFINITY, f64::min);
    let max = p_corrects.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    if span < 1e-12 {
        return vec![bounds.midpoint(); p_corrects.len()];
    }
    p_corrects
        .iter()
        .map(|p| bounds.lo + (p - min) / span * (bounds.hi - bounds.lo))
        .collect()
}

/// Clamps a raw `P_correct` into `[0, 1]` — the `Bound()` step of
/// Algorithm 1.
pub fn bound_p_correct(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::uniform(4, 100.0, 80.0, 0.001, 0.015, 0.02)
    }

    fn metrics(g1: usize, g2: usize, cd: usize) -> CircuitMetrics {
        CircuitMetrics {
            g1,
            g2,
            measurements: 4,
            critical_depth: cd,
            depth: cd + 2,
            swaps_inserted: 0,
        }
    }

    #[test]
    fn p_correct_in_unit_interval() {
        let p = p_correct(&metrics(10, 6, 12), &cal());
        assert!((0.0..=1.0).contains(&p), "p {p}");
        assert!(p > 0.5, "moderate circuit should retain fidelity: {p}");
    }

    #[test]
    fn more_gates_lower_p_correct() {
        let p_small = p_correct(&metrics(4, 2, 5), &cal());
        let p_big = p_correct(&metrics(30, 20, 40), &cal());
        assert!(p_small > p_big);
    }

    #[test]
    fn worse_calibration_lower_p_correct() {
        let m = metrics(10, 6, 12);
        let good = cal();
        let mut bad = cal();
        bad.degrade(5.0, 2.0);
        assert!(p_correct(&m, &good) > p_correct(&m, &bad));
    }

    #[test]
    fn topology_awareness_through_g2() {
        // "topological constraints will drive this value up due to
        // increased SWAP gates ... thereby decreasing weights" (Sec. IV).
        let direct = metrics(8, 4, 10);
        let routed = metrics(8, 4 + 9, 19); // 3 swaps -> 9 extra CX
        assert!(p_correct(&direct, &cal()) > p_correct(&routed, &cal()));
    }

    #[test]
    fn normalization_maps_extremes_to_bounds() {
        let w = normalize_weights(&[0.2, 0.5, 0.8], WeightBounds::new(0.5, 1.5).unwrap());
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
        assert!((w[2] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_degenerate_spread() {
        let w = normalize_weights(&[0.7, 0.7, 0.7], WeightBounds::default_band());
        assert_eq!(w, vec![1.0, 1.0, 1.0]);
        assert!(normalize_weights(&[], WeightBounds::default_band()).is_empty());
    }

    #[test]
    fn bounds_validation() {
        let band = WeightBounds::new(0.25, 1.75).unwrap();
        assert!((band.midpoint() - 1.0).abs() < 1e-12);
        assert!(
            WeightBounds::new(1.5, 0.5).is_err(),
            "inverted band rejected"
        );
        assert!(
            WeightBounds::new(-0.1, 1.0).is_err(),
            "negative lo rejected"
        );
        assert!(WeightBounds::new(0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn bound_p_correct_handles_garbage() {
        assert_eq!(bound_p_correct(f64::NAN), 0.0);
        assert_eq!(bound_p_correct(-0.3), 0.0);
        assert_eq!(bound_p_correct(1.7), 1.0);
        assert_eq!(bound_p_correct(0.42), 0.42);
    }
}
