//! The `Ensemble` session API — the single entry point to EQC training.
//!
//! An [`Ensemble`] is a reusable description of a device fleet plus a
//! training configuration, built with [`Ensemble::builder`]. Binding it
//! to a problem yields an [`EnsembleSession`]: each device transpiles
//! the problem's templates once and wraps them as compiled templates
//! ([`qdevice::CompiledTemplate`]) that its backend re-lowers at most
//! once per calibration cycle — per job only the parameter-shift pair
//! is rebound and submitted as one batched engine call. Any
//! [`Executor`] drains the session into a
//! [`TrainingReport`](crate::report::TrainingReport):
//!
//! ```
//! use eqc_core::{DiscreteEventExecutor, Ensemble, EqcConfig, Executor};
//! use vqa::QaoaProblem;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let ensemble = Ensemble::builder()
//!     .device("belem")
//!     .device("manila")
//!     .config(EqcConfig::paper_qaoa().with_epochs(3).with_shots(256))
//!     .build()?;
//! let report = ensemble.train(&problem)?; // discrete-event by default
//! assert_eq!(report.epochs, 3);
//!
//! // Equivalent, choosing the executor explicitly:
//! let mut session = ensemble.session(&problem)?;
//! let report = DiscreteEventExecutor::new().run(&mut session)?;
//! assert_eq!(report.epochs, 3);
//! # Ok::<(), eqc_core::EqcError>(())
//! ```

use crate::client::ClientNode;
use crate::config::{EqcConfig, PolicyConfig};
use crate::error::EqcError;
use crate::executor::{DiscreteEventExecutor, Executor};
use crate::master::MasterLoop;
use crate::policy::health::HealthProbe;
use crate::policy::{ClientHealth, Scheduler, Weighting};
use crate::report::TrainingReport;
use qdevice::{Calibration, DriftModel, QpuBackend, QueueModel};
use qsim::ParallelCtx;
use std::sync::Arc;
use transpile::Topology;
use vqa::VqaProblem;

/// A noiseless, zero-queue backend: the paper's ideal simulator baseline.
///
/// Fully connected topology (no routing), perfect gates, no drift, no
/// queue wait. Shot noise remains — the ideal baseline in the paper also
/// samples 8192 shots.
pub fn ideal_backend(n_qubits: usize, seed: u64) -> QpuBackend {
    let cal = Calibration::uniform(n_qubits, f64::INFINITY, f64::INFINITY, 0.0, 0.0, 0.0);
    let queue = ideal_queue();
    QpuBackend::new(
        "ideal",
        Topology::fully_connected(n_qubits.max(2)),
        cal,
        DriftModel::none(),
        queue,
        24.0,
        seed,
    )
    .with_downtime_hours(0.0)
}

/// The zero-wait queue model of the ideal simulator — also the base
/// load curve of an ideal device's shared-substrate ledger.
pub(crate) fn ideal_queue() -> QueueModel {
    QueueModel {
        overhead_s: 0.0,
        mean_wait_s: 0.0,
        diurnal_amplitude: 0.0,
        phase_hours: 0.0,
        period_hours: 24.0,
        reset_time_us: 0.0,
    }
}

/// One device slot of an ensemble or fleet, resolved lazily where
/// needed.
#[derive(Clone, Debug)]
pub(crate) enum Device {
    /// A concrete backend (catalog-resolved or user-supplied).
    Backend(Box<QpuBackend>),
    /// A noiseless zero-latency device, sized to the problem at session
    /// time.
    Ideal { seed: u64 },
}

impl Device {
    /// The device's base-load queue model — the exogenous wait curve a
    /// shared-substrate ledger starts from.
    pub(crate) fn base_queue(&self) -> QueueModel {
        match self {
            Device::Backend(b) => b.queue().clone(),
            Device::Ideal { .. } => ideal_queue(),
        }
    }

    /// The device's display name (occupancy telemetry rows).
    pub(crate) fn label(&self) -> String {
        match self {
            Device::Backend(b) => b.name().to_string(),
            Device::Ideal { .. } => "ideal".to_string(),
        }
    }
}

/// A device request before catalog resolution, shared by
/// [`EnsembleBuilder`] and [`FleetBuilder`](crate::fleet::FleetBuilder).
#[derive(Clone, Debug)]
pub(crate) enum DeviceChoice {
    /// A Table I catalog device by name.
    Named(String),
    /// An explicit spec (synthesized fleets, hand-tuned variants).
    Spec(Box<qdevice::DeviceSpec>),
    /// A fully custom backend.
    Custom(Box<QpuBackend>),
    /// The ideal simulator, sized at session time.
    Ideal,
}

/// Resolves device requests into concrete device slots: catalog lookup,
/// per-position noise seeding (`device_seed + i`, the ideal simulator
/// xors `0x5eed`). One resolution path for ensembles and fleets, so a
/// single-tenant fleet sees byte-identical devices to a standalone
/// ensemble built from the same requests.
pub(crate) fn resolve_devices(
    choices: Vec<DeviceChoice>,
    device_seed: u64,
) -> Result<Vec<Device>, EqcError> {
    if choices.is_empty() {
        return Err(EqcError::EmptyEnsemble);
    }
    let mut devices = Vec::with_capacity(choices.len());
    for (i, choice) in choices.into_iter().enumerate() {
        devices.push(match choice {
            DeviceChoice::Named(name) => {
                let spec = qdevice::catalog::by_name(&name)
                    .ok_or_else(|| EqcError::UnknownDevice(name.clone()))?;
                Device::Backend(Box::new(spec.backend(device_seed + i as u64)))
            }
            DeviceChoice::Spec(spec) => {
                Device::Backend(Box::new(spec.backend(device_seed + i as u64)))
            }
            DeviceChoice::Custom(backend) => Device::Backend(backend),
            DeviceChoice::Ideal => Device::Ideal {
                seed: (device_seed + i as u64) ^ 0x5eed,
            },
        });
    }
    Ok(devices)
}

/// Transpiles every template of `problem` for every device slot — the
/// client-construction path shared by [`Ensemble::session`] and
/// [`FleetRuntime::admit`](crate::fleet::FleetRuntime::admit). Every
/// backend's simulation engines attach to `par`'s worker team (one
/// shared team per session; results are byte-identical at any worker
/// count), and to the shared batched-job `pipeline` when one is
/// configured — one pipeline per session, or per fleet across tenants,
/// so every client's simulation jobs interleave on the same lanes.
pub(crate) fn clients_for(
    devices: &[Device],
    problem: &dyn VqaProblem,
    par: &ParallelCtx,
    pipeline: Option<&Arc<qsim::BatchPipeline>>,
) -> Result<Vec<ClientNode>, EqcError> {
    let mut clients = Vec::with_capacity(devices.len());
    for (i, device) in devices.iter().enumerate() {
        let mut backend = match device {
            Device::Backend(b) => (**b).clone(),
            Device::Ideal { seed } => ideal_backend(problem.num_qubits(), *seed),
        };
        backend.set_parallelism(par.clone());
        if let Some(p) = pipeline {
            backend.set_batch_pipeline(p.clone());
        }
        let device_name = backend.name().to_string();
        let client =
            ClientNode::new(i, backend, problem).map_err(|source| EqcError::Transpile {
                device: device_name,
                source,
            })?;
        clients.push(client);
    }
    Ok(clients)
}

/// Builds the health/scheduling probes for a client set under a policy
/// stack. Probes cost a backend clone per client; skipped when the
/// stack can never consult one (the default: `AlwaysHealthy` never
/// evicts and `Cyclic` ignores queue estimates).
pub(crate) fn probes_for(policies: &PolicyConfig, clients: &[ClientNode]) -> Vec<HealthProbe> {
    if policies.health.monitors() || policies.scheduler.needs_queue_estimates() {
        clients
            .iter()
            .map(|c| {
                let metrics = (0..c.num_templates())
                    .map(|t| *c.template_metrics(t))
                    .collect();
                HealthProbe::new(c.backend().clone(), metrics)
            })
            .collect()
    } else {
        Vec::new()
    }
}

/// A reusable fleet + configuration + policy stack. Create with
/// [`Ensemble::builder`].
#[derive(Clone, Debug)]
pub struct Ensemble {
    devices: Vec<Device>,
    config: EqcConfig,
    policies: PolicyConfig,
}

impl Ensemble {
    /// Starts building an ensemble.
    pub fn builder() -> EnsembleBuilder {
        EnsembleBuilder {
            devices: Vec::new(),
            config: EqcConfig::default(),
            policies: PolicyConfig::default(),
            device_seed: 0,
            seed: None,
        }
    }

    /// The training configuration the ensemble was built with.
    pub fn config(&self) -> EqcConfig {
        self.config
    }

    /// The master's policy stack.
    pub fn policies(&self) -> &PolicyConfig {
        &self.policies
    }

    /// Number of devices in the fleet.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Binds the ensemble to a problem: transpiles every template for
    /// every device and initializes the master state.
    ///
    /// # Errors
    ///
    /// [`EqcError::Transpile`] if a template does not fit a device;
    /// [`EqcError::EmptyProblem`] if the problem has no parameters or no
    /// gradient tasks.
    pub fn session<'p>(
        &self,
        problem: &'p dyn VqaProblem,
    ) -> Result<EnsembleSession<'p>, EqcError> {
        if problem.num_params() == 0 || problem.tasks().is_empty() {
            return Err(EqcError::EmptyProblem(problem.name()));
        }
        let par = self.config.sim_parallelism.build_ctx();
        let pipeline = self.config.sim_parallelism.build_pipeline();
        let clients = clients_for(&self.devices, problem, &par, pipeline.as_ref())?;
        EnsembleSession::assemble(problem, self.config, self.policies.clone(), clients)
    }

    /// Trains with the default (deterministic discrete-event) executor.
    pub fn train(&self, problem: &dyn VqaProblem) -> Result<TrainingReport, EqcError> {
        self.train_with(&DiscreteEventExecutor::new(), problem)
    }

    /// Trains with an explicit executor.
    pub fn train_with<E: Executor + ?Sized>(
        &self,
        executor: &E,
        problem: &dyn VqaProblem,
    ) -> Result<TrainingReport, EqcError> {
        let mut session = self.session(problem)?;
        executor.run(&mut session)
    }
}

/// Builder for [`Ensemble`] — devices by catalog name, custom backends
/// or the ideal simulator, plus configuration and seeds.
#[derive(Clone, Debug)]
pub struct EnsembleBuilder {
    devices: Vec<DeviceChoice>,
    config: EqcConfig,
    policies: PolicyConfig,
    device_seed: u64,
    seed: Option<u64>,
}

impl EnsembleBuilder {
    /// Adds a device from the Table I catalog by name.
    pub fn device(mut self, name: impl Into<String>) -> Self {
        self.devices.push(DeviceChoice::Named(name.into()));
        self
    }

    /// Adds several catalog devices at once.
    pub fn devices<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for name in names {
            self.devices.push(DeviceChoice::Named(name.into()));
        }
        self
    }

    /// Adds a device from an explicit spec — the entry point for
    /// synthesized fleets ([`qdevice::catalog::fleet`]) and hand-tuned
    /// variants. The device's noise stream is seeded like a named
    /// catalog device (`device_seed + position`).
    pub fn spec(mut self, spec: qdevice::DeviceSpec) -> Self {
        self.devices.push(DeviceChoice::Spec(Box::new(spec)));
        self
    }

    /// Adds several spec-described devices at once:
    ///
    /// ```
    /// use eqc_core::{Ensemble, EqcConfig};
    /// let base = qdevice::catalog::qaoa_devices();
    /// let ensemble = Ensemble::builder()
    ///     .specs(qdevice::catalog::fleet(&base, 64, 7))
    ///     .config(EqcConfig::paper_qaoa().with_epochs(2))
    ///     .build()?;
    /// assert_eq!(ensemble.num_devices(), 64);
    /// # Ok::<(), eqc_core::EqcError>(())
    /// ```
    pub fn specs<I>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = qdevice::DeviceSpec>,
    {
        for spec in specs {
            self.devices.push(DeviceChoice::Spec(Box::new(spec)));
        }
        self
    }

    /// Adds a custom backend (degraded calibrations, multiprogramming
    /// slots, broken devices, ...).
    pub fn backend(mut self, backend: QpuBackend) -> Self {
        self.devices.push(DeviceChoice::Custom(Box::new(backend)));
        self
    }

    /// Adds the paper's noiseless zero-latency ideal device, sized to
    /// the problem when a session is created.
    pub fn ideal_device(mut self) -> Self {
        self.devices.push(DeviceChoice::Ideal);
        self
    }

    /// Sets the training configuration (defaults to
    /// [`EqcConfig::default`]).
    pub fn config(mut self, config: EqcConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the whole policy stack at once (defaults to
    /// [`PolicyConfig::default`]: `Cyclic` + `FidelityWeighted` +
    /// `AlwaysHealthy`, the seed master loop's behavior).
    pub fn policies(mut self, policies: PolicyConfig) -> Self {
        self.policies = policies;
        self
    }

    /// Overrides the task → client scheduling policy.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.policies = self.policies.with_scheduler(scheduler);
        self
    }

    /// Overrides the gradient-weighting policy.
    pub fn weighting(mut self, weighting: impl Weighting + 'static) -> Self {
        self.policies = self.policies.with_weighting(weighting);
        self
    }

    /// Overrides the client-health (eviction / re-admission) policy.
    pub fn health(mut self, health: impl ClientHealth + 'static) -> Self {
        self.policies = self.policies.with_health(health);
        self
    }

    /// Sets the master seed: initial parameters *and* the base seed for
    /// catalog-device noise streams. Overrides `config.seed`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets only the base seed for catalog-device noise streams
    /// (device `i` draws from `device_seed + i`), leaving the
    /// parameter-initialization seed to the configuration. The figure
    /// harnesses use this to pin fleets independently of `config.seed`.
    pub fn device_seed(mut self, seed: u64) -> Self {
        self.device_seed = seed;
        self
    }

    /// Validates and resolves the ensemble.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] for out-of-range configuration,
    /// [`EqcError::EmptyEnsemble`] when no device was added, and
    /// [`EqcError::UnknownDevice`] for names missing from the catalog.
    pub fn build(self) -> Result<Ensemble, EqcError> {
        let mut config = self.config;
        let device_seed = match self.seed {
            Some(s) => {
                config.seed = s;
                s
            }
            None => self.device_seed,
        };
        config.validate()?;
        Ok(Ensemble {
            devices: resolve_devices(self.devices, device_seed)?,
            config,
            policies: self.policies,
        })
    }
}

/// An ensemble bound to one problem: transpiled clients plus the master
/// state, ready for one [`Executor::run`].
pub struct EnsembleSession<'p> {
    problem: &'p dyn VqaProblem,
    config: EqcConfig,
    clients: Vec<ClientNode>,
    master: MasterLoop,
    consumed: bool,
}

impl<'p> EnsembleSession<'p> {
    /// Builds a session directly from pre-constructed clients — the
    /// delegation path for the deprecated trainer shims and for tests
    /// that need hand-tuned [`ClientNode`]s.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] / [`EqcError::EmptyEnsemble`] /
    /// [`EqcError::EmptyProblem`] as in [`Ensemble::session`].
    pub fn from_clients(
        problem: &'p dyn VqaProblem,
        config: EqcConfig,
        clients: Vec<ClientNode>,
    ) -> Result<Self, EqcError> {
        Self::assemble(problem, config, PolicyConfig::default(), clients)
    }

    /// [`EnsembleSession::from_clients`] with an explicit policy stack.
    ///
    /// # Errors
    ///
    /// As [`EnsembleSession::from_clients`].
    pub fn from_clients_with_policies(
        problem: &'p dyn VqaProblem,
        config: EqcConfig,
        policies: PolicyConfig,
        clients: Vec<ClientNode>,
    ) -> Result<Self, EqcError> {
        Self::assemble(problem, config, policies, clients)
    }

    /// The shared constructor: validates, builds per-client health
    /// probes (a backend clone + transpiled metrics per client, so the
    /// master can score and queue-estimate devices whose `ClientNode`
    /// is checked out by a worker thread), and initializes the master.
    fn assemble(
        problem: &'p dyn VqaProblem,
        config: EqcConfig,
        policies: PolicyConfig,
        clients: Vec<ClientNode>,
    ) -> Result<Self, EqcError> {
        config.validate()?;
        if clients.is_empty() {
            return Err(EqcError::EmptyEnsemble);
        }
        if problem.num_params() == 0 || problem.tasks().is_empty() {
            return Err(EqcError::EmptyProblem(problem.name()));
        }
        let probes = probes_for(&policies, &clients);
        let master = MasterLoop::new(problem, config, policies, clients.len(), probes);
        Ok(EnsembleSession {
            problem,
            config,
            clients,
            master,
            consumed: false,
        })
    }

    /// The bound problem (the returned reference outlives the session).
    pub fn problem(&self) -> &'p dyn VqaProblem {
        self.problem
    }

    /// The training configuration.
    pub fn config(&self) -> EqcConfig {
        self.config
    }

    /// Number of clients in the session.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Marks the session consumed; executors call this exactly once at
    /// the top of [`Executor::run`].
    ///
    /// # Errors
    ///
    /// [`EqcError::SessionConsumed`] if the session already trained.
    pub fn begin(&mut self) -> Result<(), EqcError> {
        if self.consumed {
            return Err(EqcError::SessionConsumed);
        }
        self.consumed = true;
        Ok(())
    }

    /// Splits the session into its clients and master state — the two
    /// halves every executor drives against each other.
    pub fn split_mut(&mut self) -> (&mut Vec<ClientNode>, &mut MasterLoop) {
        (&mut self.clients, &mut self.master)
    }

    /// Moves the clients out (thread-based executors hand each client to
    /// its worker); pair with [`EnsembleSession::put_clients`].
    pub fn take_clients(&mut self) -> Vec<ClientNode> {
        std::mem::take(&mut self.clients)
    }

    /// Returns clients taken with [`EnsembleSession::take_clients`] so
    /// the final report sees their counters.
    pub fn put_clients(&mut self, clients: Vec<ClientNode>) {
        self.clients = clients;
    }

    /// Engine-side telemetry across this session's clients: lanes of
    /// data-parallelism, shift pairs folded over a shared prefix, and
    /// jobs executed. Lives beside the report (see
    /// [`EngineTelemetry`](crate::report::EngineTelemetry)) because the
    /// report itself is byte-identical at any engine setting.
    pub fn engine_telemetry(&self) -> crate::report::EngineTelemetry {
        crate::report::EngineTelemetry {
            workers: self
                .clients
                .iter()
                .map(ClientNode::sim_workers)
                .max()
                .unwrap_or(1),
            folded_pairs: self.clients.iter().map(ClientNode::folded_pairs).sum(),
            jobs: self
                .clients
                .iter()
                .map(|c| c.backend().jobs_executed())
                .sum(),
            prefix_hits: self.clients.iter().map(ClientNode::prefix_hits).sum(),
            batched_jobs: self.clients.iter().map(ClientNode::batched_jobs).sum(),
            pipeline_lanes: self
                .clients
                .iter()
                .map(ClientNode::pipeline_lanes)
                .max()
                .unwrap_or(0),
        }
    }

    /// Assembles the training report under the given trainer label.
    ///
    /// # Errors
    ///
    /// [`EqcError::ClientCountMismatch`] when the executor failed to
    /// hand every client back before reporting.
    pub fn finish(&self, trainer: String) -> Result<TrainingReport, EqcError> {
        self.master.report(self.problem, trainer, &self.clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_device_is_a_typed_error() {
        let err = Ensemble::builder().device("atlantis").build().unwrap_err();
        assert_eq!(err, EqcError::UnknownDevice("atlantis".into()));
    }

    #[test]
    fn empty_ensemble_is_a_typed_error() {
        let err = Ensemble::builder().build().unwrap_err();
        assert_eq!(err, EqcError::EmptyEnsemble);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let err = Ensemble::builder()
            .device("belem")
            .config(EqcConfig::paper_qaoa().with_epochs(0))
            .build()
            .unwrap_err();
        assert!(matches!(err, EqcError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn session_is_single_use() {
        let problem = vqa::QaoaProblem::maxcut_ring4();
        let ensemble = Ensemble::builder()
            .device("belem")
            .config(EqcConfig::paper_qaoa().with_epochs(1).with_shots(64))
            .build()
            .unwrap();
        let mut session = ensemble.session(&problem).unwrap();
        let first = DiscreteEventExecutor::new().run(&mut session);
        assert!(first.is_ok());
        let second = DiscreteEventExecutor::new().run(&mut session);
        assert_eq!(second.unwrap_err(), EqcError::SessionConsumed);
    }

    #[test]
    fn tuned_parallelism_is_byte_identical_to_serial() {
        use crate::config::SimParallelism;
        let problem = vqa::QaoaProblem::maxcut_ring4();
        let train = |parallelism: SimParallelism| {
            Ensemble::builder()
                .devices(["belem", "manila"])
                .device_seed(7)
                .config(
                    EqcConfig::paper_qaoa()
                        .with_epochs(2)
                        .with_shots(128)
                        .with_sim_parallelism(parallelism),
                )
                .build()
                .expect("builds")
                .train(&problem)
                .expect("trains")
        };
        let serial = train(SimParallelism::Serial);
        // min_dim 2 forces the 4-qubit (dim-16) kernels onto the team —
        // the default threshold of 64 would leave them serial and the
        // equivalence vacuous.
        let tuned = train(SimParallelism::Tuned {
            workers: 2,
            min_dim: 2,
        });
        assert_eq!(
            format!("{serial:?}"),
            format!("{tuned:?}"),
            "kernel fan-out must partition work, never reorder arithmetic"
        );
        let default_threshold = train(SimParallelism::Tuned {
            workers: 2,
            min_dim: qsim::DEFAULT_PAR_MIN_DIM,
        });
        assert_eq!(format!("{serial:?}"), format!("{default_threshold:?}"));
    }

    #[test]
    fn ensemble_is_reusable_across_sessions() {
        let problem = vqa::QaoaProblem::maxcut_ring4();
        let ensemble = Ensemble::builder()
            .device("belem")
            .device("manila")
            .config(EqcConfig::paper_qaoa().with_epochs(2).with_shots(128))
            .build()
            .unwrap();
        let a = ensemble.train(&problem).unwrap();
        let b = ensemble.train(&problem).unwrap();
        assert_eq!(a.final_params, b.final_params, "fresh session, same stream");
    }

    #[test]
    fn ideal_device_resolves_at_session_time() {
        let problem = vqa::QaoaProblem::maxcut_ring4();
        let report = Ensemble::builder()
            .ideal_device()
            .config(EqcConfig::paper_qaoa().with_epochs(2).with_shots(256))
            .build()
            .unwrap()
            .train(&problem)
            .unwrap();
        assert_eq!(report.clients.len(), 1);
        assert_eq!(report.clients[0].device, "ideal");
    }
}
