//! The shared master-loop core behind every [`Executor`].
//!
//! Algorithm 1 of the paper is one state machine regardless of the
//! execution substrate: walk the cyclic task schedule, gather each
//! (cycle, parameter)'s slice gradients, apply the weighted ASGD update
//! `theta <- theta - w * alpha * g` (Eqs. 4/12), track staleness, and
//! record epoch history. [`MasterLoop`] owns that state machine; the
//! executors in [`crate::executor`] differ only in *how* tasks reach
//! devices and in which order results come back.
//!
//! [`Executor`]: crate::executor::Executor

use crate::client::{ClientNode, ClientTaskResult};
use crate::config::EqcConfig;
use crate::report::{ClientStats, EpochRecord, TrainingReport, WeightSample};
use crate::weighting::WeightBounds;
use qdevice::SimTime;
use std::collections::HashMap;
use vqa::{GradientTask, VqaProblem};

/// A task handed to a client, with everything the master needs to file
/// the result when it returns.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// The gradient task to execute.
    pub task: GradientTask,
    /// Snapshot of the parameters at dispatch time.
    pub params: Vec<f64>,
    /// Cycle index of the task (gather key component).
    pub cycle: usize,
    /// Parameter-update counter at dispatch time (staleness tracking).
    pub dispatched_at_update: u64,
}

/// Accumulates the slice gradients of one (cycle, parameter) gather.
struct Gather {
    remaining: usize,
    weighted_sum: f64,
}

/// The master node's full optimization state, shared by every executor.
pub struct MasterLoop {
    config: EqcConfig,
    n_clients: usize,

    // Cyclic schedule.
    tasks: Vec<GradientTask>,
    tasks_per_cycle: usize,
    params_per_cycle: usize,
    slices_per_param: HashMap<usize, usize>,
    cursor: usize,

    // Optimization state.
    theta: Vec<f64>,
    update_count: u64,
    epochs_recorded: usize,
    terminated: bool,
    gathers: HashMap<(usize, usize), Gather>,

    // Weighting state.
    last_p: Vec<f64>,
    p_seen: Vec<bool>,
    p_sums: Vec<f64>,
    absorbed: Vec<u64>,
    w_sums: Vec<f64>,
    w_counts: Vec<u64>,
    weight_trace: Vec<WeightSample>,

    // History and staleness telemetry.
    history: Vec<EpochRecord>,
    update_log: Vec<(usize, usize)>,
    staleness_max: u64,
    staleness_sum: u64,
    staleness_n: u64,
    now: SimTime,
}

impl MasterLoop {
    /// Builds the master state for `problem` under `config`.
    ///
    /// The caller (the session constructor) has already validated the
    /// configuration and checked that the problem has a non-empty
    /// schedule.
    pub(crate) fn new(problem: &dyn VqaProblem, config: EqcConfig, n_clients: usize) -> Self {
        let tasks = problem.tasks();
        let tasks_per_cycle = tasks.len();
        let params_per_cycle = problem.num_params();
        let mut slices_per_param: HashMap<usize, usize> = HashMap::new();
        for t in &tasks {
            *slices_per_param.entry(t.param.index()).or_insert(0) += 1;
        }
        MasterLoop {
            config,
            n_clients,
            theta: problem.initial_point(config.seed),
            tasks,
            tasks_per_cycle,
            params_per_cycle,
            slices_per_param,
            cursor: 0,
            update_count: 0,
            epochs_recorded: 0,
            terminated: false,
            gathers: HashMap::new(),
            last_p: vec![1.0; n_clients],
            p_seen: vec![false; n_clients],
            p_sums: vec![0.0; n_clients],
            absorbed: vec![0; n_clients],
            w_sums: vec![0.0; n_clients],
            w_counts: vec![0; n_clients],
            weight_trace: Vec::new(),
            history: Vec::new(),
            update_log: Vec::new(),
            staleness_max: 0,
            staleness_sum: 0,
            staleness_n: 0,
            now: SimTime::ZERO,
        }
    }

    /// Whether the training goal is met (epoch budget reached or the
    /// virtual-time cap crossed).
    pub fn is_complete(&self) -> bool {
        self.terminated || self.epochs_recorded >= self.config.epochs
    }

    /// The latest virtual time observed across absorbed results.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The (cycle, parameter) group the next assignment belongs to.
    /// Executors with barrier semantics use this to detect group
    /// boundaries without consuming the assignment.
    ///
    /// Group detection relies on [`VqaProblem::tasks`] listing all
    /// slices of a parameter contiguously (which every shipped problem
    /// does; the schedule is the paper's cyclic per-parameter walk).
    pub fn next_group(&self) -> (usize, usize) {
        let cycle = self.cursor / self.tasks_per_cycle;
        let param = self.tasks[self.cursor % self.tasks_per_cycle].param.index();
        (cycle, param)
    }

    /// Takes the next task off the cyclic schedule, registering its
    /// gather (Algorithm 1's dispatch step).
    pub fn next_assignment(&mut self) -> Assignment {
        let cycle = self.cursor / self.tasks_per_cycle;
        let task = self.tasks[self.cursor % self.tasks_per_cycle];
        self.cursor += 1;
        let slices = self.slices_per_param[&task.param.index()];
        self.gathers
            .entry((cycle, task.param.index()))
            .or_insert(Gather {
                remaining: slices,
                weighted_sum: 0.0,
            });
        Assignment {
            task,
            params: self.theta.clone(),
            cycle,
            dispatched_at_update: self.update_count,
        }
    }

    /// Files one completed task: updates the weighting state, folds the
    /// weighted gradient into its gather and, when the gather completes,
    /// applies the ASGD update and records staleness / epoch history.
    ///
    /// Results completing past the virtual-time cap are discarded and
    /// mark the run terminated (the paper's 2-week cutoff).
    pub fn absorb(
        &mut self,
        client: usize,
        cycle: usize,
        dispatched_at_update: u64,
        result: &ClientTaskResult,
        problem: &dyn VqaProblem,
    ) {
        if self.is_complete() {
            return;
        }
        self.now = self.now.max(result.completed);
        if let Some(cap) = self.config.max_virtual_hours {
            if result.completed.as_hours() > cap {
                self.terminated = true;
                return;
            }
        }

        // Fresh P_correct for the reporting client.
        self.last_p[client] = result.p_correct;
        self.p_seen[client] = true;
        self.p_sums[client] += result.p_correct;
        self.absorbed[client] += 1;

        let w = match self.config.weight_bounds {
            // Weighting normalizes devices against each other; with a
            // single client there is nothing to normalize, so the
            // weighting system is inert (as in the pre-0.2
            // single-device trainer).
            Some(_) if self.n_clients < 2 => 1.0,
            Some(bounds) => {
                let ws = effective_weights(&self.last_p, &self.p_seen, bounds);
                self.weight_trace.push(WeightSample {
                    virtual_hours: self.now.as_hours(),
                    weights: ws.clone(),
                });
                ws[client]
            }
            None => 1.0,
        };
        self.w_sums[client] += w;
        self.w_counts[client] += 1;

        // Fold the weighted slice gradient into its gather.
        let key = (cycle, result.task.param.index());
        let done = {
            let g = self
                .gathers
                .get_mut(&key)
                .expect("gather registered at dispatch");
            g.weighted_sum += w * result.gradient;
            g.remaining -= 1;
            g.remaining == 0
        };
        if done {
            let g = self.gathers.remove(&key).expect("checked above");
            let mut step = self.config.learning_rate * g.weighted_sum;
            if let Some(clip) = self.config.gradient_clip {
                step = step.clamp(-clip, clip);
            }
            self.theta[key.1] -= step;
            self.update_count += 1;
            self.update_log.push(key);

            let staleness = self.update_count.saturating_sub(dispatched_at_update + 1);
            self.staleness_max = self.staleness_max.max(staleness);
            self.staleness_sum += staleness;
            self.staleness_n += 1;

            // Epoch boundary: every parameter updated once more.
            if self.update_count as usize / self.params_per_cycle > self.epochs_recorded {
                self.epochs_recorded = self.update_count as usize / self.params_per_cycle;
                self.history.push(EpochRecord {
                    epoch: self.epochs_recorded,
                    virtual_hours: self.now.as_hours(),
                    ideal_loss: problem.ideal_loss(&self.theta),
                });
            }
        }
    }

    /// Assembles the final [`TrainingReport`] from the master state and
    /// the (returned) clients' counters.
    pub fn report(
        &self,
        problem: &dyn VqaProblem,
        trainer: String,
        clients: &[ClientNode],
    ) -> TrainingReport {
        let final_loss = problem.ideal_loss(&self.theta);
        let client_stats = clients
            .iter()
            .enumerate()
            .map(|(i, c)| ClientStats {
                device: c.device_name(),
                tasks_completed: c.tasks_completed(),
                circuits_run: c.circuits_run(),
                mean_p_correct: if self.absorbed[i] > 0 {
                    self.p_sums[i] / self.absorbed[i] as f64
                } else {
                    0.0
                },
                mean_weight: if self.w_counts[i] > 0 {
                    self.w_sums[i] / self.w_counts[i] as f64
                } else {
                    1.0
                },
                utilization: c.backend().utilization(self.now),
            })
            .collect();
        TrainingReport {
            problem: problem.name(),
            trainer,
            epochs: self.epochs_recorded,
            history: self.history.clone(),
            final_params: self.theta.clone(),
            final_loss,
            reference_minimum: problem.reference_minimum(),
            total_hours: self.now.as_hours(),
            clients: client_stats,
            weight_trace: self.weight_trace.clone(),
            updates_applied: self.update_count,
            update_log: self.update_log.clone(),
            max_staleness: self.staleness_max as usize,
            mean_staleness: if self.staleness_n > 0 {
                self.staleness_sum as f64 / self.staleness_n as f64
            } else {
                0.0
            },
        }
    }
}

/// Weights from the latest `P_correct` per client: clients that have not
/// reported yet ride at the band midpoint so one fast device cannot
/// dominate the normalization early. Shared by every executor.
pub(crate) fn effective_weights(last_p: &[f64], seen: &[bool], bounds: WeightBounds) -> Vec<f64> {
    let reported: Vec<f64> = last_p
        .iter()
        .zip(seen)
        .filter(|(_, s)| **s)
        .map(|(p, _)| *p)
        .collect();
    if reported.len() < 2 {
        return vec![bounds.midpoint(); last_p.len()];
    }
    let min = reported.iter().copied().fold(f64::INFINITY, f64::min);
    let max = reported.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    last_p
        .iter()
        .zip(seen)
        .map(|(p, s)| {
            if !s || span < 1e-12 {
                bounds.midpoint()
            } else {
                bounds.lo + (p - min) / span * (bounds.hi - bounds.lo)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqa::QaoaProblem;

    #[test]
    fn schedule_cycles_through_every_parameter() {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(64);
        let mut master = MasterLoop::new(&problem, cfg, 2);
        let tasks_per_cycle = problem.tasks().len();
        let mut seen_params = std::collections::HashSet::new();
        for _ in 0..tasks_per_cycle {
            let a = master.next_assignment();
            assert_eq!(a.cycle, 0);
            seen_params.insert(a.task.param.index());
        }
        assert_eq!(seen_params.len(), problem.num_params());
        let (cycle, _) = master.next_group();
        assert_eq!(cycle, 1, "second cycle starts after one full pass");
    }

    #[test]
    fn midpoint_weights_until_two_clients_report() {
        let bounds = WeightBounds::default_band();
        let w = effective_weights(&[0.9, 1.0, 0.4], &[true, false, false], bounds);
        assert_eq!(w, vec![1.0, 1.0, 1.0]);
        let w = effective_weights(&[0.9, 1.0, 0.4], &[true, false, true], bounds);
        assert!(w[0] > w[2], "better device gets more weight: {w:?}");
        assert_eq!(w[1], 1.0, "silent client rides the midpoint");
    }
}
