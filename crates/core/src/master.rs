//! The shared master-loop core behind every [`Executor`].
//!
//! Algorithm 1 of the paper is one state machine regardless of the
//! execution substrate: walk the cyclic task schedule, gather each
//! (cycle, parameter)'s slice gradients, apply the weighted ASGD update
//! `theta <- theta - w * alpha * g` (Eqs. 4/12), track staleness, and
//! record epoch history. [`MasterLoop`] owns that state machine; the
//! executors in [`crate::executor`] differ only in *how* tasks reach
//! devices and in which order results come back.
//!
//! The three policy decisions the loop makes — which client gets the
//! next task, how much a gradient counts, and whether a drifting client
//! keeps participating — are delegated to the [`crate::policy`] stack
//! ([`PolicyConfig`]): the master owns the bookkeeping (weighting
//! state, health baselines, the eviction set) and hands each policy an
//! immutable context snapshot. Executors interact with the health layer
//! through three queries: [`MasterLoop::is_active`] (may this client be
//! dispatched?), [`MasterLoop::drain_readmitted`] (who rejoined since
//! the last absorb?), and [`MasterLoop::pick_client`] (which idle
//! client gets the next task?).
//!
//! [`Executor`]: crate::executor::Executor

use crate::client::{ClientNode, ClientTaskResult};
use crate::config::{EqcConfig, PolicyConfig};
use crate::error::EqcError;
use crate::policy::health::HealthProbe;
use crate::policy::{FleetOccupancy, HealthContext, HealthVerdict, ScheduleContext, WeightContext};
use crate::report::{
    ClientStats, EpochRecord, EvictionEvent, MembershipChange, PolicyTelemetry, TrainingReport,
    WeightProvenance, WeightSample,
};
use qdevice::SimTime;
use std::collections::HashMap;
use vqa::{GradientTask, VqaProblem};

/// A task handed to a client, with everything the master needs to file
/// the result when it returns.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// The gradient task to execute.
    pub task: GradientTask,
    /// Snapshot of the parameters at dispatch time.
    pub params: Vec<f64>,
    /// Cycle index of the task (gather key component).
    pub cycle: usize,
    /// Parameter-update counter at dispatch time (staleness tracking).
    pub dispatched_at_update: u64,
}

/// Accumulates the slice gradients of one (cycle, parameter) gather.
struct Gather {
    remaining: usize,
    weighted_sum: f64,
}

/// The master node's full optimization state, shared by every executor.
pub struct MasterLoop {
    config: EqcConfig,
    policies: PolicyConfig,
    n_clients: usize,

    // Cyclic schedule.
    tasks: Vec<GradientTask>,
    tasks_per_cycle: usize,
    params_per_cycle: usize,
    slices_per_param: HashMap<usize, usize>,
    cursor: usize,

    // Optimization state.
    theta: Vec<f64>,
    update_count: u64,
    epochs_recorded: usize,
    terminated: bool,
    gathers: HashMap<(usize, usize), Gather>,

    // Weighting state.
    last_p: Vec<f64>,
    p_seen: Vec<bool>,
    p_sums: Vec<f64>,
    absorbed: Vec<u64>,
    w_sums: Vec<f64>,
    w_counts: Vec<u64>,
    w_min: Vec<f64>,
    w_max: Vec<f64>,
    weight_trace: Vec<WeightSample>,

    // Health state.
    probes: Vec<HealthProbe>,
    active: Vec<bool>,
    active_count: usize,
    baseline_p: Vec<f64>,
    readmitted_pending: Vec<usize>,
    evictions: u64,
    readmissions: u64,
    eviction_log: Vec<EvictionEvent>,

    // History and staleness telemetry.
    history: Vec<EpochRecord>,
    update_log: Vec<(usize, usize)>,
    staleness_max: u64,
    staleness_sum: u64,
    staleness_n: u64,
    now: SimTime,

    // Shared-substrate occupancy view (fleet drives only; `None` for
    // standalone sessions and byte-isolated substrates).
    fleet_occupancy: Option<FleetOccupancy>,
}

impl MasterLoop {
    /// Builds the master state for `problem` under `config` and
    /// `policies`.
    ///
    /// `probes` gives the health/scheduling layer a per-client window
    /// onto each device's reported calibration and queue model. It may
    /// be empty (unit tests, bare shims), in which case queue estimates
    /// read as zero and re-admission probes echo the client's baseline.
    ///
    /// The caller (the session constructor) has already validated the
    /// configuration and checked that the problem has a non-empty
    /// schedule.
    pub(crate) fn new(
        problem: &dyn VqaProblem,
        config: EqcConfig,
        policies: PolicyConfig,
        n_clients: usize,
        probes: Vec<HealthProbe>,
    ) -> Self {
        let tasks = problem.tasks();
        let tasks_per_cycle = tasks.len();
        let params_per_cycle = problem.num_params();
        let mut slices_per_param: HashMap<usize, usize> = HashMap::new();
        for t in &tasks {
            *slices_per_param.entry(t.param.index()).or_insert(0) += 1;
        }
        MasterLoop {
            config,
            policies,
            n_clients,
            theta: problem.initial_point(config.seed),
            tasks,
            tasks_per_cycle,
            params_per_cycle,
            slices_per_param,
            cursor: 0,
            update_count: 0,
            epochs_recorded: 0,
            terminated: false,
            gathers: HashMap::new(),
            last_p: vec![1.0; n_clients],
            p_seen: vec![false; n_clients],
            p_sums: vec![0.0; n_clients],
            absorbed: vec![0; n_clients],
            w_sums: vec![0.0; n_clients],
            w_counts: vec![0; n_clients],
            w_min: vec![f64::INFINITY; n_clients],
            w_max: vec![f64::NEG_INFINITY; n_clients],
            weight_trace: Vec::new(),
            probes,
            active: vec![true; n_clients],
            active_count: n_clients,
            baseline_p: vec![0.0; n_clients],
            readmitted_pending: Vec::new(),
            evictions: 0,
            readmissions: 0,
            eviction_log: Vec::new(),
            history: Vec::new(),
            update_log: Vec::new(),
            staleness_max: 0,
            staleness_sum: 0,
            staleness_n: 0,
            now: SimTime::ZERO,
            fleet_occupancy: None,
        }
    }

    /// Refreshes the installed occupancy snapshot *in place* from the
    /// fleet's shared view, shifting booked horizons by the tenant's
    /// arrival offset. Reuses the existing snapshot's buffers, so
    /// steady-state refreshes are allocation-free.
    pub(crate) fn install_fleet_occupancy(&mut self, fleet_view: &FleetOccupancy, offset_s: f64) {
        self.fleet_occupancy
            .get_or_insert_with(FleetOccupancy::default)
            .copy_shifted_from(fleet_view, offset_s);
    }

    /// Whether refreshing the occupancy snapshot can affect this loop's
    /// decisions. Schedulers that never read queue estimates (e.g. the
    /// paper's cyclic default) keep their decision sequence regardless
    /// of occupancy, so the fleet skips the refresh entirely — which is
    /// also what keeps the shared-substrate oracle byte-exact.
    pub(crate) fn wants_occupancy(&self) -> bool {
        self.policies.scheduler.needs_queue_estimates()
    }

    /// Whether the training goal is met (epoch budget reached or the
    /// virtual-time cap crossed).
    pub fn is_complete(&self) -> bool {
        self.terminated || self.epochs_recorded >= self.config.epochs
    }

    /// The latest virtual time observed across absorbed results.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Epochs recorded so far — the progress half of the deadline
    /// introspection consumed by capacity arbiters.
    pub fn epochs_completed(&self) -> usize {
        self.epochs_recorded
    }

    /// The configured epoch budget this loop is training towards.
    pub fn epoch_budget(&self) -> usize {
        self.config.epochs
    }

    /// Whether `client` is currently in the rotation (not evicted by
    /// the health policy). Executors must not dispatch to inactive
    /// clients.
    pub fn is_active(&self, client: usize) -> bool {
        self.active.get(client).copied().unwrap_or(false)
    }

    /// Number of clients currently in the rotation.
    pub fn active_clients(&self) -> usize {
        self.active_count
    }

    /// Clients re-admitted by the health policy since the last drain.
    /// Executors fold these back into their idle sets (re-routing the
    /// schedule share an evicted client gave up).
    pub fn drain_readmitted(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.readmitted_pending)
    }

    /// The dispatch protocol shared by every one-task-in-flight
    /// executor: which clients get the next tasks, in scheduler-policy
    /// order, after `freed`'s result was absorbed — the freed client
    /// itself (unless the health policy benched it) plus every client
    /// re-admitted since the last dispatch. May be empty.
    ///
    /// # Errors
    ///
    /// Propagates [`MasterLoop::pick_client`] failures.
    pub fn dispatch_order(&mut self, freed: usize) -> Result<Vec<usize>, EqcError> {
        let mut idle = self.drain_readmitted();
        if self.is_active(freed) {
            idle.push(freed);
        }
        self.policy_order(idle)
    }

    /// The priming protocol: every active client, in scheduler-policy
    /// order, for the executor's initial one-task-per-client fan-out.
    ///
    /// # Errors
    ///
    /// Propagates [`MasterLoop::pick_client`] failures.
    pub fn prime_order(&mut self) -> Result<Vec<usize>, EqcError> {
        let idle: Vec<usize> = (0..self.n_clients).filter(|&c| self.active[c]).collect();
        self.policy_order(idle)
    }

    /// Orders an idle set by repeated scheduler consultation (dispatch
    /// does not feed back into [`MasterLoop::pick_client`], so the
    /// order can be fixed up front).
    fn policy_order(&self, mut idle: Vec<usize>) -> Result<Vec<usize>, EqcError> {
        idle.sort_unstable();
        // A client both freed and re-admitted in one absorb (possible
        // only under a health policy that flaps within a single probe)
        // must still be dispatched exactly once.
        idle.dedup();
        if idle.len() <= 1 {
            return Ok(idle);
        }
        let mut order = Vec::with_capacity(idle.len());
        while !idle.is_empty() {
            let c = self.pick_client(&idle)?;
            idle.retain(|&x| x != c);
            order.push(c);
        }
        Ok(order)
    }

    /// Monotone counter of health-membership changes (evictions +
    /// re-admissions); executors that cache an active-client list
    /// refresh it when this moves.
    pub fn membership_generation(&self) -> u64 {
        self.evictions + self.readmissions
    }

    /// Consults the scheduler policy for the next assignment's client.
    ///
    /// `candidates` are the executor's idle, active clients in
    /// ascending id order. With a single candidate the scheduler is
    /// bypassed (there is no decision to make — and no queue estimate
    /// to pay for on the hot path).
    ///
    /// # Errors
    ///
    /// [`EqcError::Internal`] when called with no candidates.
    pub fn pick_client(&self, candidates: &[usize]) -> Result<usize, EqcError> {
        let first = *candidates
            .first()
            .ok_or_else(|| EqcError::Internal("scheduler consulted with no idle clients".into()))?;
        if candidates.len() == 1 {
            return Ok(first);
        }
        let queue_wait_s: Vec<f64> = if self.policies.scheduler.needs_queue_estimates() {
            // Predictive schedulers evaluate the queue models ahead of
            // the current virtual time (where the job would actually
            // queue); instantaneous ones read them at `now` exactly.
            let horizon = self.policies.scheduler.lookahead_s();
            let at = if horizon.is_finite() && horizon > 0.0 {
                self.now + horizon
            } else {
                self.now
            };
            let at_s = at.as_secs();
            candidates
                .iter()
                .map(|&c| {
                    let base = self.probes.get(c).map_or(0.0, |p| p.queue_wait_s(at));
                    // On the shared substrate the per-device ledger's
                    // cross-tenant pressure stacks on top of the
                    // client's own base-load estimate.
                    match &self.fleet_occupancy {
                        Some(occ) => base + occ.pressure_s(c, at_s),
                        None => base,
                    }
                })
                .collect()
        } else {
            vec![0.0; candidates.len()]
        };
        let pick = self.policies.scheduler.pick(&ScheduleContext {
            candidates,
            queue_wait_s: &queue_wait_s,
            now_hours: self.now.as_hours(),
            occupancy: self.fleet_occupancy.as_ref(),
        });
        // An out-of-set pick would corrupt the executor's idle
        // bookkeeping; fall back to the first candidate instead.
        Ok(if candidates.contains(&pick) {
            pick
        } else {
            first
        })
    }

    /// The (cycle, parameter) group the next assignment belongs to, or
    /// `None` on an empty schedule. Executors with barrier semantics
    /// use this to detect group boundaries without consuming the
    /// assignment.
    ///
    /// Group detection relies on [`VqaProblem::tasks`] listing all
    /// slices of a parameter contiguously (which every shipped problem
    /// does; the schedule is the paper's cyclic per-parameter walk).
    pub fn next_group(&self) -> Option<(usize, usize)> {
        if self.tasks_per_cycle == 0 {
            return None;
        }
        let cycle = self.cursor / self.tasks_per_cycle;
        let param = self.tasks[self.cursor % self.tasks_per_cycle].param.index();
        Some((cycle, param))
    }

    /// Takes the next task off the cyclic schedule, registering its
    /// gather (Algorithm 1's dispatch step).
    ///
    /// # Errors
    ///
    /// [`EqcError::EmptySchedule`] when the problem produced no tasks
    /// (unreachable through the session constructors, which reject
    /// empty problems up front).
    pub fn next_assignment(&mut self) -> Result<Assignment, EqcError> {
        if self.tasks_per_cycle == 0 {
            return Err(EqcError::EmptySchedule);
        }
        let cycle = self.cursor / self.tasks_per_cycle;
        let task = self.tasks[self.cursor % self.tasks_per_cycle];
        self.cursor += 1;
        let slices = self.slices_per_param[&task.param.index()];
        self.gathers
            .entry((cycle, task.param.index()))
            .or_insert(Gather {
                remaining: slices,
                weighted_sum: 0.0,
            });
        Ok(Assignment {
            task,
            params: self.theta.clone(),
            cycle,
            dispatched_at_update: self.update_count,
        })
    }

    /// Files one completed task: updates the weighting state, folds the
    /// policy-weighted gradient into its gather and, when the gather
    /// completes, applies the ASGD update and records staleness / epoch
    /// history. Afterwards the health policy rules on the reporting
    /// client and every evicted client is probed for re-admission.
    ///
    /// Results completing past the virtual-time cap are discarded and
    /// mark the run terminated (the paper's 2-week cutoff).
    ///
    /// # Errors
    ///
    /// [`EqcError::UnknownGather`] when the result does not match any
    /// gather registered by [`MasterLoop::next_assignment`].
    pub fn absorb(
        &mut self,
        client: usize,
        cycle: usize,
        dispatched_at_update: u64,
        result: &ClientTaskResult,
        problem: &dyn VqaProblem,
    ) -> Result<(), EqcError> {
        if self.is_complete() {
            return Ok(());
        }

        // Reject an orphaned result *before* it can touch any state —
        // the virtual clock and termination flag included — so an
        // erroring caller leaves the master exactly as it found it.
        let key = (cycle, result.task.param.index());
        if !self.gathers.contains_key(&key) {
            return Err(EqcError::UnknownGather {
                cycle,
                param: key.1,
            });
        }

        self.now = self.now.max(result.completed);
        if let Some(cap) = self.config.max_virtual_hours {
            if result.completed.as_hours() > cap {
                self.terminated = true;
                return Ok(());
            }
        }

        // Fresh P_correct for the reporting client.
        self.last_p[client] = result.p_correct;
        self.p_seen[client] = true;
        self.p_sums[client] += result.p_correct;
        self.absorbed[client] += 1;

        let decision = self.policies.weighting.weight(&WeightContext {
            client,
            n_clients: self.n_clients,
            last_p_correct: &self.last_p,
            reported: &self.p_seen,
            bounds: self.config.weight_bounds,
            staleness: self.update_count.saturating_sub(dispatched_at_update),
        });
        if let Some(weights) = decision.ensemble_trace {
            self.weight_trace.push(WeightSample {
                virtual_hours: self.now.as_hours(),
                weights,
            });
        }
        let w = decision.weight;
        self.w_sums[client] += w;
        self.w_counts[client] += 1;
        self.w_min[client] = self.w_min[client].min(w);
        self.w_max[client] = self.w_max[client].max(w);

        // Fold the weighted slice gradient into its gather.
        let done = {
            let g = self.gathers.get_mut(&key).expect("checked above");
            g.weighted_sum += w * result.gradient;
            g.remaining -= 1;
            g.remaining == 0
        };
        if done {
            let g = self.gathers.remove(&key).expect("checked above");
            let mut step = self.config.learning_rate * g.weighted_sum;
            if let Some(clip) = self.config.gradient_clip {
                step = step.clamp(-clip, clip);
            }
            self.theta[key.1] -= step;
            self.update_count += 1;
            self.update_log.push(key);

            let staleness = self.update_count.saturating_sub(dispatched_at_update + 1);
            self.staleness_max = self.staleness_max.max(staleness);
            self.staleness_sum += staleness;
            self.staleness_n += 1;

            // Epoch boundary: every parameter updated once more.
            if self.update_count as usize / self.params_per_cycle > self.epochs_recorded {
                self.epochs_recorded = self.update_count as usize / self.params_per_cycle;
                self.history.push(EpochRecord {
                    epoch: self.epochs_recorded,
                    virtual_hours: self.now.as_hours(),
                    ideal_loss: problem.ideal_loss(&self.theta),
                });
            }
        }

        // Health: verdict on the reporting client, then re-admission
        // probes for the benched ones.
        self.consult_health(client, result.p_correct);
        self.poll_readmissions();
        Ok(())
    }

    /// Asks the health policy about the reporting client and applies an
    /// eviction verdict (refusing to bench the last active client).
    ///
    /// Both the score and the baseline live in probe space — the
    /// all-template mean over the *reported* calibration — so the
    /// on-result threshold and the re-admission threshold compare the
    /// same quantity even on problems whose templates score very
    /// differently. A master built without probes (unit tests, bare
    /// shims) falls back to per-result scores on both sides.
    fn consult_health(&mut self, client: usize, result_p: f64) {
        if !self.policies.health.monitors() || !self.active[client] {
            return;
        }
        let p_correct = self
            .probes
            .get(client)
            .map_or(result_p, |p| p.p_correct_at(self.now));
        self.baseline_p[client] = self.baseline_p[client].max(p_correct);
        let ctx = HealthContext {
            client,
            p_correct,
            baseline_p: self.baseline_p[client],
            now_hours: self.now.as_hours(),
            active_clients: self.active_count,
            n_clients: self.n_clients,
        };
        if self.policies.health.on_result(&ctx) == HealthVerdict::Evict && self.active_count > 1 {
            self.active[client] = false;
            self.active_count -= 1;
            self.evictions += 1;
            self.eviction_log.push(EvictionEvent {
                client,
                virtual_hours: self.now.as_hours(),
                change: MembershipChange::Evicted,
            });
        }
    }

    /// Probes every evicted client's reported calibration at the
    /// current virtual time and re-admits the recovered ones.
    fn poll_readmissions(&mut self) {
        if self.evictions == self.readmissions {
            return; // nobody benched — the common (and default) case
        }
        for client in 0..self.n_clients {
            if self.active[client] {
                continue;
            }
            let p_correct = self
                .probes
                .get(client)
                .map_or(self.baseline_p[client], |p| p.p_correct_at(self.now));
            let ctx = HealthContext {
                client,
                p_correct,
                baseline_p: self.baseline_p[client],
                now_hours: self.now.as_hours(),
                active_clients: self.active_count,
                n_clients: self.n_clients,
            };
            if self.policies.health.readmit(&ctx) {
                self.active[client] = true;
                self.active_count += 1;
                self.readmissions += 1;
                self.eviction_log.push(EvictionEvent {
                    client,
                    virtual_hours: self.now.as_hours(),
                    change: MembershipChange::Readmitted,
                });
                self.readmitted_pending.push(client);
            }
        }
    }

    /// Assembles the final [`TrainingReport`] from the master state and
    /// the (returned) clients' counters.
    ///
    /// # Errors
    ///
    /// [`EqcError::ClientCountMismatch`] when `clients` does not cover
    /// the fleet the master was built for.
    pub fn report(
        &self,
        problem: &dyn VqaProblem,
        trainer: String,
        clients: &[ClientNode],
    ) -> Result<TrainingReport, EqcError> {
        if clients.len() != self.n_clients {
            return Err(EqcError::ClientCountMismatch {
                expected: self.n_clients,
                got: clients.len(),
            });
        }
        let final_loss = problem.ideal_loss(&self.theta);
        let client_stats = clients
            .iter()
            .enumerate()
            .map(|(i, c)| ClientStats {
                device: c.device_name(),
                tasks_completed: c.tasks_completed(),
                circuits_run: c.circuits_run(),
                mean_p_correct: if self.absorbed[i] > 0 {
                    self.p_sums[i] / self.absorbed[i] as f64
                } else {
                    0.0
                },
                mean_weight: if self.w_counts[i] > 0 {
                    self.w_sums[i] / self.w_counts[i] as f64
                } else {
                    1.0
                },
                utilization: c.backend().utilization(self.now),
            })
            .collect();
        let weight_provenance = (0..self.n_clients)
            .map(|i| WeightProvenance {
                client: i,
                policy: self.policies.weighting.label(),
                samples: self.w_counts[i],
                min_weight: if self.w_counts[i] > 0 {
                    self.w_min[i]
                } else {
                    1.0
                },
                max_weight: if self.w_counts[i] > 0 {
                    self.w_max[i]
                } else {
                    1.0
                },
            })
            .collect();
        Ok(TrainingReport {
            problem: problem.name(),
            trainer,
            epochs: self.epochs_recorded,
            history: self.history.clone(),
            final_params: self.theta.clone(),
            final_loss,
            reference_minimum: problem.reference_minimum(),
            total_hours: self.now.as_hours(),
            clients: client_stats,
            weight_trace: self.weight_trace.clone(),
            updates_applied: self.update_count,
            update_log: self.update_log.clone(),
            max_staleness: self.staleness_max as usize,
            mean_staleness: if self.staleness_n > 0 {
                self.staleness_sum as f64 / self.staleness_n as f64
            } else {
                0.0
            },
            policy: PolicyTelemetry {
                scheduler: self.policies.scheduler.name().to_string(),
                weighting: self.policies.weighting.label(),
                health: self.policies.health.name().to_string(),
                evictions: self.evictions,
                readmissions: self.readmissions,
                eviction_log: self.eviction_log.clone(),
                weight_provenance,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::ParamId;
    use vqa::{QaoaProblem, TaskSlice};

    fn master(n_clients: usize) -> (QaoaProblem, MasterLoop) {
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(64);
        let master = MasterLoop::new(
            &problem,
            cfg,
            PolicyConfig::default(),
            n_clients,
            Vec::new(),
        );
        (problem, master)
    }

    #[test]
    fn schedule_cycles_through_every_parameter() {
        let (problem, mut master) = master(2);
        let tasks_per_cycle = vqa::VqaProblem::tasks(&problem).len();
        let mut seen_params = std::collections::HashSet::new();
        for _ in 0..tasks_per_cycle {
            let a = master.next_assignment().expect("schedule is non-empty");
            assert_eq!(a.cycle, 0);
            seen_params.insert(a.task.param.index());
        }
        assert_eq!(seen_params.len(), vqa::VqaProblem::num_params(&problem));
        let (cycle, _) = master.next_group().expect("schedule is non-empty");
        assert_eq!(cycle, 1, "second cycle starts after one full pass");
    }

    #[test]
    fn empty_schedule_is_a_typed_error() {
        let (_, mut m) = master(1);
        m.tasks.clear();
        m.tasks_per_cycle = 0;
        assert_eq!(m.next_assignment().unwrap_err(), EqcError::EmptySchedule);
        assert_eq!(m.next_group(), None);
    }

    #[test]
    fn orphaned_result_is_a_typed_error() {
        let (problem, mut m) = master(1);
        let result = ClientTaskResult {
            task: GradientTask {
                param: ParamId(0),
                slice: TaskSlice::Full,
            },
            gradient: 0.1,
            p_correct: 0.9,
            submitted: SimTime::ZERO,
            completed: SimTime::from_secs(1.0),
            circuits_run: 2,
        };
        // No dispatch registered the (7, 0) gather.
        let err = m.absorb(0, 7, 0, &result, &problem).unwrap_err();
        assert_eq!(err, EqcError::UnknownGather { cycle: 7, param: 0 });
        // The rejected result must not have leaked into any state the
        // report reads — the virtual clock and termination included.
        assert!(!m.p_seen[0], "orphaned result recorded as seen");
        assert_eq!(m.absorbed[0], 0);
        assert_eq!(m.baseline_p[0], 0.0);
        assert!(m.weight_trace.is_empty());
        assert_eq!(m.now(), SimTime::ZERO, "orphan advanced the clock");
        assert!(!m.terminated);
    }

    #[test]
    fn report_rejects_a_mismatched_fleet() {
        let (problem, m) = master(2);
        let err = m.report(&problem, "eqc[2]".into(), &[]).unwrap_err();
        assert_eq!(
            err,
            EqcError::ClientCountMismatch {
                expected: 2,
                got: 0
            }
        );
    }

    #[test]
    fn scheduler_falls_back_on_an_out_of_set_pick() {
        #[derive(Debug)]
        struct Rogue;
        impl crate::policy::Scheduler for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn pick(&self, _ctx: &ScheduleContext<'_>) -> usize {
                usize::MAX
            }
        }
        let problem = QaoaProblem::maxcut_ring4();
        let cfg = EqcConfig::paper_qaoa().with_epochs(1).with_shots(64);
        let policies = PolicyConfig::default().with_scheduler(Rogue);
        let m = MasterLoop::new(&problem, cfg, policies, 3, Vec::new());
        assert_eq!(m.pick_client(&[1, 2]).unwrap(), 1, "fallback to first");
        assert!(m.pick_client(&[]).is_err(), "no candidates is an error");
    }
}
