//! The bounded worker-pool substrate: fleet-scale ensembles without
//! fleet-scale threads.
//!
//! [`ThreadedExecutor`](crate::ThreadedExecutor) is the paper's
//! Ray.io-actor analogue — one OS thread per client — which stops
//! scaling at a few dozen clients. [`PooledExecutor`] multiplexes *any*
//! number of clients over a bounded pool (default:
//! [`std::thread::available_parallelism`] workers), so the 100–1000
//! client fleets of [`qdevice::catalog::fleet`] train with the thread
//! footprint of a laptop.
//!
//! ## Architecture
//!
//! * **Sharded run-queue** ([`RunQueue`]) — dispatched tasks land on
//!   the shard of their client (`client % workers`), so a client's jobs
//!   tend to stay on one worker (warm compiled-template and
//!   engine-scratch caches). Idle workers steal from the deepest
//!   foreign shard; the [`PoolTelemetry`] counters (`workers_spawned`,
//!   `queue_depth_max`, `tasks_stolen`) expose the pool's behaviour
//!   after a run. The queue is generic over its task type: it started
//!   as this executor's private scaffolding and now lives in
//!   [`qsim::parallel`] as the workspace-wide substrate under the
//!   multi-tenant [`crate::fleet`] runtime and the data-parallel
//!   engines too.
//! * **Clients behind mutexes** — the coordinator keeps at most one
//!   task per client in flight, so the per-client locks are never
//!   contended; they exist to let any worker execute any client's task.
//! * **Two absorption policies** — see below.
//!
//! ## Deterministic mode (default)
//!
//! With [`PoolConfig::deterministic`] set, the run delegates to the
//! [`crate::fleet`] pooled drive as a fleet of one tenant: results are
//! absorbed in exactly the
//! [`DiscreteEventExecutor`](crate::DiscreteEventExecutor) total order
//! — earliest virtual completion first, client id breaking ties — with
//! each absorb immediately re-dispatching the freed client, exactly as
//! Algorithm 1 does. The report is therefore **byte-identical** to the
//! discrete-event executor's (including the `eqc[n]` trainer label);
//! only wall-clock and the pool telemetry differ.
//!
//! Parallelism and exact ordering coexist through conservative
//! lookahead, the classic discrete-event trick: a task dispatched at
//! virtual time `t` on a device with queue model `q` cannot complete
//! before `t + 0.8·q.wait(t) + q.overhead` (0.8 is the jitter floor,
//! and execution time is strictly positive), so any event already in
//! the heap that precedes every in-flight task's bound is safe to
//! absorb without waiting. In the common regime — many devices with
//! comparable latencies — the heap always holds events below the
//! bounds, workers stay saturated, and the coordinator never blocks
//! except at the tail.
//!
//! ## Arrival mode
//!
//! With `deterministic(false)` results are absorbed in arrival order,
//! matching the [`ThreadedExecutor`](crate::ThreadedExecutor)'s
//! realistic-but-irreproducible semantics (per-client virtual-time
//! cursors, label `eqc-pooled[n]`).

use crate::client::{ClientNode, ClientTaskResult};
use crate::config::PoolConfig;
use crate::ensemble::EnsembleSession;
use crate::error::EqcError;
use crate::executor::Executor;
use crate::master::Assignment;
use crate::policy::arbiter::Unshared;
use crate::report::{PoolTelemetry, TrainingReport};
use qdevice::SimTime;
use std::sync::{mpsc, Mutex};
use std::thread;

pub(crate) use qsim::parallel::{drain_tasks, RunQueue};

/// One dispatched task travelling through the arrival-mode run-queue.
struct PoolTask {
    client: usize,
    assignment: Assignment,
    submit: SimTime,
}

/// A finished task travelling back to the coordinator.
struct TaskDone {
    client: usize,
    result: ClientTaskResult,
    cycle: usize,
    dispatched_at_update: u64,
}

/// Worker-to-coordinator protocol.
enum WorkerMsg {
    Done(TaskDone),
    Panicked(usize),
}

/// A fourth [`Executor`]: a bounded worker pool with a sharded,
/// work-stealing run-queue (see the [module docs](self)).
///
/// ```
/// use eqc_core::{Ensemble, EqcConfig, PooledExecutor};
/// use vqa::QaoaProblem;
///
/// let problem = QaoaProblem::maxcut_ring4();
/// let ensemble = Ensemble::builder()
///     .device("belem")
///     .device("manila")
///     .config(EqcConfig::paper_qaoa().with_epochs(2).with_shots(128))
///     .build()?;
/// let pooled = PooledExecutor::new(); // deterministic by default
/// let a = ensemble.train_with(&pooled, &problem)?;
/// let b = ensemble.train(&problem)?; // discrete-event executor
/// assert_eq!(a, b, "deterministic pool replays the DES order exactly");
/// assert!(pooled.telemetry().expect("ran").workers_spawned <= 2);
/// # Ok::<(), eqc_core::EqcError>(())
/// ```
#[derive(Debug, Default)]
pub struct PooledExecutor {
    config: PoolConfig,
    telemetry: Mutex<Option<PoolTelemetry>>,
}

impl PooledExecutor {
    /// Creates the executor with [`PoolConfig::default`] (deterministic,
    /// one worker per hardware thread).
    pub fn new() -> Self {
        Self::with_config(PoolConfig::default())
    }

    /// Creates the executor with an explicit configuration (validated
    /// when [`Executor::run`] is called).
    pub fn with_config(config: PoolConfig) -> Self {
        PooledExecutor {
            config,
            telemetry: Mutex::new(None),
        }
    }

    /// Overrides the worker count (builder style).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// Selects deterministic (discrete-event-identical) or arrival-order
    /// absorption (builder style).
    pub fn deterministic(mut self, on: bool) -> Self {
        self.config.deterministic = on;
        self
    }

    /// The pool counters of the most recent [`Executor::run`] on this
    /// executor, or `None` before the first run.
    pub fn telemetry(&self) -> Option<PoolTelemetry> {
        *self.telemetry.lock().expect("telemetry lock")
    }

    /// The deterministic path: a fleet of one tenant over the pooled
    /// substrate, byte-identical to the discrete-event executor.
    fn run_deterministic(
        &self,
        session: &mut EnsembleSession<'_>,
        workers: usize,
    ) -> Result<TrainingReport, EqcError> {
        let problem = session.problem();
        let cfg = session.config();
        let (clients, master) = session.split_mut();
        let n = clients.len();
        let mut lanes = [crate::fleet::Lane::single(
            problem, cfg.shots, clients, master,
        )];
        let (driven, telemetry) = crate::fleet::drive_pooled(&mut lanes, &Unshared, n, workers);
        drop(lanes);
        *self.telemetry.lock().expect("telemetry lock") = Some(telemetry);
        driven?;
        session.finish(format!("eqc[{n}]"))
    }

    /// The arrival-order path: [`ThreadedExecutor`] semantics over the
    /// bounded pool.
    ///
    /// [`ThreadedExecutor`]: crate::ThreadedExecutor
    fn run_arrival(
        &self,
        session: &mut EnsembleSession<'_>,
        workers: usize,
    ) -> Result<TrainingReport, EqcError> {
        let problem = session.problem();
        let cfg = session.config();
        let n = session.num_clients();

        let taken = session.take_clients();
        let clients: Vec<Mutex<ClientNode>> = taken.into_iter().map(Mutex::new).collect();
        let runq: RunQueue<PoolTask> = RunQueue::new(workers);
        let (result_tx, result_rx) = mpsc::channel::<WorkerMsg>();

        let outcome: Result<(), EqcError> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let result_tx = result_tx.clone();
                let (runq, clients) = (&runq, &clients);
                let shots = cfg.shots;
                handles.push(scope.spawn(move || {
                    drain_tasks(
                        w,
                        runq,
                        &result_tx,
                        |task: &PoolTask| {
                            let client = task.client;
                            let mut node = clients[client]
                                .lock()
                                .unwrap_or_else(|_| panic!("client {client} poisoned"));
                            node.run_task(
                                problem,
                                task.assignment.task,
                                &task.assignment.params,
                                shots,
                                task.submit,
                            )
                        },
                        |task, result| {
                            WorkerMsg::Done(TaskDone {
                                client: task.client,
                                result,
                                cycle: task.assignment.cycle,
                                dispatched_at_update: task.assignment.dispatched_at_update,
                            })
                        },
                        |task| WorkerMsg::Panicked(task.client),
                    )
                }));
            }
            drop(result_tx);

            let driven = drive_arrival(session, &runq, &result_rx, n);

            runq.close();
            let mut join_failure = None;
            for (w, h) in handles.into_iter().enumerate() {
                if h.join().is_err() {
                    join_failure = Some(EqcError::Internal(format!("pool worker {w} panicked")));
                }
            }
            driven.and(join_failure.map_or(Ok(()), Err))
        });

        // Every client comes back on every path — poisoned mutexes still
        // surrender their client — so an errored session keeps its fleet.
        session.put_clients(
            clients
                .into_iter()
                .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
                .collect(),
        );
        let (queue_depth_max, tasks_stolen) = runq.counters();
        *self.telemetry.lock().expect("telemetry lock") = Some(PoolTelemetry {
            workers_spawned: workers,
            queue_depth_max,
            tasks_stolen,
        });
        outcome?;

        session.finish(format!("eqc-pooled[{n}]"))
    }
}

impl Executor for PooledExecutor {
    fn run(&self, session: &mut EnsembleSession<'_>) -> Result<TrainingReport, EqcError> {
        self.config.validate()?;
        session.begin()?;
        let workers = self.config.resolved_workers(session.num_clients());
        if self.config.deterministic {
            self.run_deterministic(session, workers)
        } else {
            self.run_arrival(session, workers)
        }
    }
}

/// The arrival-order coordinator: absorb as results land, per-client
/// virtual-time cursors.
fn drive_arrival(
    session: &mut EnsembleSession<'_>,
    runq: &RunQueue<PoolTask>,
    result_rx: &mpsc::Receiver<WorkerMsg>,
    n: usize,
) -> Result<(), EqcError> {
    let problem = session.problem();
    let mut local_time = vec![SimTime::ZERO; n];
    let (_, master) = session.split_mut();
    // Prime every client, in scheduler-policy order.
    for client in master.prime_order()? {
        let assignment = master.next_assignment()?;
        runq.push(
            client,
            PoolTask {
                client,
                assignment,
                submit: SimTime::ZERO,
            },
        );
    }
    while !master.is_complete() {
        match result_rx.recv() {
            Ok(WorkerMsg::Done(done)) => {
                local_time[done.client] = done.result.completed;
                master.absorb(
                    done.client,
                    done.cycle,
                    done.dispatched_at_update,
                    &done.result,
                    problem,
                )?;
                if master.is_complete() {
                    break;
                }
                // Honor eviction/re-admission in the arrival-order
                // dispatch loop too.
                for client in master.dispatch_order(done.client)? {
                    let assignment = master.next_assignment()?;
                    runq.push(
                        client,
                        PoolTask {
                            client,
                            assignment,
                            submit: local_time[client],
                        },
                    );
                }
            }
            Ok(WorkerMsg::Panicked(client)) => {
                return Err(EqcError::Internal(format!(
                    "pool task for client {client} panicked"
                )));
            }
            Err(_) => return Err(EqcError::Internal("pool workers exited early".into())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EqcConfig;
    use crate::ensemble::Ensemble;
    use vqa::QaoaProblem;

    fn small_ensemble(names: &[&str], epochs: usize) -> Ensemble {
        Ensemble::builder()
            .devices(names.iter().copied())
            .device_seed(100)
            .config(EqcConfig::paper_qaoa().with_epochs(epochs).with_shots(256))
            .build()
            .expect("catalog devices")
    }

    #[test]
    fn deterministic_pool_matches_discrete_event_byte_for_byte() {
        let problem = QaoaProblem::maxcut_ring4();
        let ensemble = small_ensemble(&["belem", "manila", "bogota"], 5);
        let des = ensemble.train(&problem).expect("trains");
        let pooled_exec = PooledExecutor::new().workers(3);
        let pooled = ensemble.train_with(&pooled_exec, &problem).expect("trains");
        assert_eq!(des, pooled, "structurally identical reports");
        assert_eq!(format!("{des:?}"), format!("{pooled:?}"), "byte-identical");
        let t = pooled_exec.telemetry().expect("ran");
        assert_eq!(t.workers_spawned, 3);
        assert!(t.queue_depth_max >= 1);
    }

    #[test]
    fn single_worker_pool_is_still_deterministic_and_identical() {
        let problem = QaoaProblem::maxcut_ring4();
        let ensemble = small_ensemble(&["belem", "manila"], 4);
        let des = ensemble.train(&problem).expect("trains");
        let pooled = ensemble
            .train_with(&PooledExecutor::new().workers(1), &problem)
            .expect("trains");
        assert_eq!(des, pooled);
    }

    #[test]
    fn arrival_mode_trains_every_client() {
        let problem = QaoaProblem::maxcut_ring4();
        let ensemble = small_ensemble(&["belem", "manila", "bogota"], 6);
        let exec = PooledExecutor::new().deterministic(false).workers(2);
        let report = ensemble.train_with(&exec, &problem).expect("trains");
        assert_eq!(report.epochs, 6);
        assert!(report.trainer.starts_with("eqc-pooled"));
        for c in &report.clients {
            assert!(c.tasks_completed > 0, "{} idle", c.device);
        }
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let problem = QaoaProblem::maxcut_ring4();
        let ensemble = small_ensemble(&["belem"], 1);
        let err = ensemble
            .train_with(&PooledExecutor::new().workers(0), &problem)
            .unwrap_err();
        assert!(matches!(err, EqcError::InvalidConfig(_)), "{err:?}");
    }
}
