//! The appendix convergence bound of asynchronous SGD (paper Eqs. 12-14).
//!
//! For a cyclic, partially asynchronous SGD with bounded gradients
//! `||g|| <= C`, bounded delay `D`, cyclic-order slack `T`, `m`
//! parameters and step size `alpha`, the paper (following Nedic et al.)
//! bounds the asymptotic loss gap by
//!
//! ```text
//! lim l(theta) <= l* + m C^2 (1/2 + m + 2D + T) alpha      (Eq. 14)
//! ```
//!
//! This module computes the bound, extracts its empirical inputs from a
//! training run, and provides a miniature delayed-gradient SGD simulator
//! used by tests and the `convergence` harness binary to check the bound
//! numerically.

use crate::report::TrainingReport;

/// The quantities entering Eq. 14.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergenceParams {
    /// Number of parameters `m`.
    pub m: usize,
    /// Gradient norm bound `C`.
    pub c: f64,
    /// Maximum update staleness `D`.
    pub d: usize,
    /// Cyclic-order slack `T` (`|pi(t) - t| <= T`).
    pub t: usize,
    /// Step size `alpha`.
    pub alpha: f64,
}

impl ConvergenceParams {
    /// The asymptotic gap term of Eq. 14:
    /// `m C^2 (1/2 + m + 2D + T) alpha`.
    pub fn asymptotic_gap(&self) -> f64 {
        self.m as f64
            * self.c
            * self.c
            * (0.5 + self.m as f64 + 2.0 * self.d as f64 + self.t as f64)
            * self.alpha
    }

    /// Extracts empirical parameters from a finished EQC run: `D` from
    /// the observed staleness, `T` conservatively set to one cycle, `C`
    /// supplied by the caller (e.g. the largest gradient magnitude seen
    /// or a Hamiltonian-norm bound).
    pub fn from_report(report: &TrainingReport, m: usize, c: f64, alpha: f64) -> Self {
        ConvergenceParams {
            m,
            c,
            d: report.max_staleness,
            t: m,
            alpha,
        }
    }
}

/// A miniature delayed-gradient ASGD simulator on the quadratic
/// `l(x) = 0.5 * sum lambda_i x_i^2` (whose optimum is `l* = 0`), with
/// every applied gradient `delay` steps stale. Returns the sequence of
/// loss values.
///
/// The quadratic keeps the experiment analytic: gradients are bounded on
/// the trajectory and the fixed point is known, so harness code can check
/// `lim l <= l* + gap` directly.
pub fn delayed_sgd_quadratic(
    lambdas: &[f64],
    x0: &[f64],
    alpha: f64,
    delay: usize,
    steps: usize,
) -> Vec<f64> {
    assert_eq!(lambdas.len(), x0.len(), "dimension mismatch");
    let m = x0.len();
    let mut x = x0.to_vec();
    // History of parameter snapshots for stale gradient evaluation.
    let mut snapshots: Vec<Vec<f64>> = vec![x.clone(); delay + 1];
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let stale = &snapshots[step % (delay + 1)];
        // Cyclic coordinate update with a stale gradient (the paper's
        // partially asynchronous model).
        let i = step % m;
        let g = lambdas[i] * stale[i];
        x[i] -= alpha * g;
        snapshots[step % (delay + 1)] = x.clone();
        let loss: f64 = x.iter().zip(lambdas).map(|(xi, l)| 0.5 * l * xi * xi).sum();
        losses.push(loss);
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_formula() {
        let p = ConvergenceParams {
            m: 16,
            c: 2.0,
            d: 3,
            t: 16,
            alpha: 0.1,
        };
        let expected = 16.0 * 4.0 * (0.5 + 16.0 + 6.0 + 16.0) * 0.1;
        assert!((p.asymptotic_gap() - expected).abs() < 1e-12);
    }

    #[test]
    fn gap_grows_with_staleness_and_step() {
        let base = ConvergenceParams {
            m: 4,
            c: 1.0,
            d: 0,
            t: 4,
            alpha: 0.1,
        };
        let stale = ConvergenceParams { d: 8, ..base };
        let big_step = ConvergenceParams { alpha: 0.5, ..base };
        assert!(stale.asymptotic_gap() > base.asymptotic_gap());
        assert!(big_step.asymptotic_gap() > base.asymptotic_gap());
    }

    #[test]
    fn delayed_sgd_converges_within_bound() {
        let lambdas = [1.0, 2.0, 0.5, 1.5];
        let x0 = [2.0, -1.0, 3.0, 0.5];
        let alpha = 0.05;
        for delay in [0usize, 2, 5] {
            let losses = delayed_sgd_quadratic(&lambdas, &x0, alpha, delay, 4000);
            let tail = losses[3900..].iter().copied().fold(0.0f64, f64::max);
            // Gradient bound along the trajectory: lambda_max * max|x0|.
            let c = 2.0 * 3.0;
            let p = ConvergenceParams {
                m: 4,
                c,
                d: delay,
                t: 4,
                alpha,
            };
            assert!(
                tail <= p.asymptotic_gap(),
                "delay {delay}: tail loss {tail} above bound {}",
                p.asymptotic_gap()
            );
        }
    }

    #[test]
    fn zero_delay_converges_to_optimum() {
        let losses = delayed_sgd_quadratic(&[1.0, 1.0], &[1.0, -1.0], 0.1, 0, 2000);
        assert!(losses.last().unwrap() < &1e-10);
    }

    #[test]
    fn larger_delay_slower_or_noisier() {
        let fast = delayed_sgd_quadratic(&[1.0, 1.0], &[1.0, -1.0], 0.3, 0, 200);
        let slow = delayed_sgd_quadratic(&[1.0, 1.0], &[1.0, -1.0], 0.3, 6, 200);
        let f_tail: f64 = fast[150..].iter().sum();
        let s_tail: f64 = slow[150..].iter().sum();
        assert!(
            s_tail >= f_tail,
            "stale ASGD should not beat synchronous SGD"
        );
    }
}
