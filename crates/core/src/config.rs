//! Training configuration.

use crate::error::EqcError;
use crate::policy::{AlwaysHealthy, ClientHealth, Cyclic, FidelityWeighted, Scheduler, Weighting};
use crate::weighting::WeightBounds;
use qsim::ParallelCtx;
use std::sync::Arc;

/// Data-parallelism of each client's simulation engines.
///
/// Controls the [`qsim::WorkerTeam`] a session attaches to its
/// backends: density-kernel row blocks, Kraus accumulation and
/// independent trajectories fan out over the team. Results are
/// **byte-identical at any setting** — the engines partition work, never
/// reorder arithmetic or RNG draws — so this is purely a wall-clock
/// knob. It pays off from roughly six active qubits upward (below that
/// the kernels stay serial regardless) and for trajectory simulation;
/// the paper's 4–5 qubit workloads gain little.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimParallelism {
    /// Everything on the submitting thread (the default).
    #[default]
    Serial,
    /// A worker team with this many total lanes (the submitting thread
    /// plus `n - 1` spawned workers). `Workers(1)` is equivalent to
    /// [`SimParallelism::Serial`]. The fan-out threshold stays at the
    /// engine default ([`qsim::DEFAULT_PAR_MIN_DIM`]).
    Workers(usize),
    /// A worker team with an explicit fan-out threshold: kernel passes
    /// on states of Hilbert dimension below `min_dim` stay on the
    /// serial fast path even under the team. `Tuned { workers, min_dim:
    /// qsim::DEFAULT_PAR_MIN_DIM }` is equivalent to
    /// `Workers(workers)`; a smaller `min_dim` lets small-qubit
    /// workloads fan out too. Byte-identical results at any setting.
    Tuned {
        /// Total lanes of parallelism (as in [`SimParallelism::Workers`]).
        workers: usize,
        /// Minimum Hilbert dimension before kernel passes use the team.
        min_dim: usize,
    },
    /// The fleet-wide batched job pipeline: one shared
    /// [`qsim::BatchPipeline`] with this many lanes drains *whole
    /// simulation jobs* from every client of the session (and, on the
    /// fleet drives, every tenant), instead of each client fanning the
    /// row blocks of one kernel pass. This is the knob that
    /// parallelizes the paper's 4–5 qubit workloads, which sit below
    /// the row-block threshold; it also enables the cross-template
    /// shared-prefix cache on every backend. `Pipeline { lanes: 1 }`
    /// spawns no threads (batched path inline). Byte-identical results
    /// at any lane count.
    Pipeline {
        /// Total lanes of execution (submitting threads help drain).
        lanes: usize,
    },
}

impl SimParallelism {
    /// Builds the parallel context this setting describes. Each call
    /// spawns a fresh team for [`SimParallelism::Workers`] and
    /// [`SimParallelism::Tuned`]; callers build one per session and
    /// share it across that session's backends.
    pub fn build_ctx(&self) -> ParallelCtx {
        match *self {
            SimParallelism::Serial => ParallelCtx::serial(),
            SimParallelism::Workers(n) => ParallelCtx::with_workers(n),
            SimParallelism::Tuned { workers, min_dim } => {
                ParallelCtx::with_workers(workers).with_min_dim(min_dim)
            }
            // The pipeline parallelizes across jobs, not row blocks —
            // engines stay serial.
            SimParallelism::Pipeline { .. } => ParallelCtx::serial(),
        }
    }

    /// Builds the shared batched-job pipeline this setting describes
    /// (`None` for every non-pipeline setting). Callers build one per
    /// session — or one per fleet, shared across tenants — and attach
    /// it to every backend.
    pub fn build_pipeline(&self) -> Option<std::sync::Arc<qsim::BatchPipeline>> {
        match *self {
            SimParallelism::Pipeline { lanes } => Some(qsim::BatchPipeline::new(lanes)),
            _ => None,
        }
    }

    /// Lanes of parallelism this setting resolves to (1 when serial).
    pub fn lanes(&self) -> usize {
        match *self {
            SimParallelism::Serial => 1,
            SimParallelism::Workers(n) => n.max(1),
            SimParallelism::Tuned { workers, .. } => workers.max(1),
            SimParallelism::Pipeline { lanes } => lanes.max(1),
        }
    }
}

/// Configuration of an EQC (or baseline) training run.
///
/// Defaults follow the paper's evaluation: learning rate 0.1 (Section
/// V-B), 8192 shots, no gradient clipping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EqcConfig {
    /// ASGD learning rate `alpha` (paper: 0.1).
    pub learning_rate: f64,
    /// Epochs to train; one epoch cycles every parameter once
    /// (Algorithm 1's `epsilon`).
    pub epochs: usize,
    /// Shots per circuit execution (paper: 8192).
    pub shots: usize,
    /// Weight band for the adaptive weighting system; `None` trains
    /// unweighted (`w = 1`).
    pub weight_bounds: Option<WeightBounds>,
    /// Seed for initial parameters and any sampling the trainer owns.
    pub seed: u64,
    /// Optional clip on each applied parameter update's magnitude.
    pub gradient_clip: Option<f64>,
    /// Optional cap on virtual training time; training stops once a
    /// completed task crosses it (the paper terminates single-machine
    /// experiments "beyond 2-weeks of running time", Fig. 6).
    pub max_virtual_hours: Option<f64>,
    /// Data-parallelism of each client's simulation engines (default
    /// serial; byte-identical results at any setting).
    pub sim_parallelism: SimParallelism,
}

impl EqcConfig {
    /// The paper's VQE setup: `alpha = 0.1`, 8192 shots, 250 epochs,
    /// unweighted.
    pub fn paper_vqe() -> Self {
        EqcConfig {
            learning_rate: 0.1,
            epochs: 250,
            shots: 8192,
            weight_bounds: None,
            seed: 7,
            gradient_clip: None,
            max_virtual_hours: None,
            sim_parallelism: SimParallelism::Serial,
        }
    }

    /// The paper's QAOA setup: 50 iterations over 2 parameters.
    pub fn paper_qaoa() -> Self {
        EqcConfig {
            learning_rate: 0.1,
            epochs: 50,
            shots: 8192,
            weight_bounds: None,
            seed: 7,
            gradient_clip: None,
            max_virtual_hours: None,
            sim_parallelism: SimParallelism::Serial,
        }
    }

    /// Builder-style override of the epoch budget.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder-style override of the shot budget.
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Builder-style weighting activation.
    pub fn with_weights(mut self, bounds: WeightBounds) -> Self {
        self.weight_bounds = Some(bounds);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style learning-rate override.
    pub fn with_learning_rate(mut self, alpha: f64) -> Self {
        self.learning_rate = alpha;
        self
    }

    /// Builder-style virtual-time cap (hours).
    pub fn with_time_cap_hours(mut self, hours: f64) -> Self {
        self.max_virtual_hours = Some(hours);
        self
    }

    /// Builder-style engine-parallelism override (see
    /// [`SimParallelism`]; byte-identical results at any setting).
    pub fn with_sim_parallelism(mut self, parallelism: SimParallelism) -> Self {
        self.sim_parallelism = parallelism;
        self
    }

    /// Validates ranges; called by [`Ensemble::builder`] and every
    /// session constructor before training starts.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] naming the offending field on a
    /// non-positive learning rate, zero epochs, zero shots, or a
    /// non-positive gradient clip / time cap.
    ///
    /// [`Ensemble::builder`]: crate::Ensemble::builder
    pub fn validate(&self) -> Result<(), EqcError> {
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(EqcError::InvalidConfig(format!(
                "learning rate must be positive and finite, got {}",
                self.learning_rate
            )));
        }
        if self.epochs == 0 {
            return Err(EqcError::InvalidConfig(
                "epoch budget must be positive".into(),
            ));
        }
        if self.shots == 0 {
            return Err(EqcError::InvalidConfig(
                "shot budget must be positive".into(),
            ));
        }
        if let Some(c) = self.gradient_clip {
            if c.is_nan() || c <= 0.0 {
                return Err(EqcError::InvalidConfig(format!(
                    "gradient clip must be positive, got {c}"
                )));
            }
        }
        if matches!(
            self.sim_parallelism,
            SimParallelism::Workers(0)
                | SimParallelism::Tuned { workers: 0, .. }
                | SimParallelism::Pipeline { lanes: 0 }
        ) {
            return Err(EqcError::InvalidConfig(
                "engine worker-team lanes must be positive".into(),
            ));
        }
        if let Some(h) = self.max_virtual_hours {
            if h.is_nan() || h <= 0.0 {
                return Err(EqcError::InvalidConfig(format!(
                    "virtual-time cap must be positive, got {h}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for EqcConfig {
    fn default() -> Self {
        EqcConfig::paper_vqe()
    }
}

/// The master node's policy stack: one implementation per decision axis
/// (see [`crate::policy`]). Policies are shared immutable values
/// (`Arc`), so a `PolicyConfig` clones cheaply with its
/// [`Ensemble`](crate::Ensemble) and one stack can drive any number of
/// sessions concurrently.
///
/// The default stack — [`Cyclic`] + [`FidelityWeighted`] +
/// [`AlwaysHealthy`] — reproduces the pre-policy master loop byte for
/// byte; the executor equivalence tests pin that as the refactor
/// oracle.
///
/// ```
/// use eqc_core::policy::{DriftEviction, EquiEnsemble, LeastLoaded};
/// use eqc_core::PolicyConfig;
///
/// let policies = PolicyConfig::default()
///     .with_scheduler(LeastLoaded)
///     .with_weighting(EquiEnsemble)
///     .with_health(DriftEviction::default());
/// assert_eq!(policies.health.name(), "drift-eviction");
/// ```
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Task → client assignment policy.
    pub scheduler: Arc<dyn Scheduler>,
    /// Gradient weighting policy.
    pub weighting: Arc<dyn Weighting>,
    /// Participation (eviction / re-admission) policy.
    pub health: Arc<dyn ClientHealth>,
}

impl PolicyConfig {
    /// Builder-style scheduler override.
    pub fn with_scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Arc::new(scheduler);
        self
    }

    /// Builder-style weighting override.
    pub fn with_weighting(mut self, weighting: impl Weighting + 'static) -> Self {
        self.weighting = Arc::new(weighting);
        self
    }

    /// Builder-style health override.
    pub fn with_health(mut self, health: impl ClientHealth + 'static) -> Self {
        self.health = Arc::new(health);
        self
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            scheduler: Arc::new(Cyclic),
            weighting: Arc::new(FidelityWeighted),
            health: Arc::new(AlwaysHealthy),
        }
    }
}

/// How one tenant participates in a multi-tenant
/// [`FleetRuntime`](crate::fleet::FleetRuntime): its training
/// configuration, its own policy stack (the equi-ensemble result —
/// arXiv:2509.17982 — shows policy choice is tenant-specific), and the
/// knobs the fleet's [`TenantArbiter`](crate::policy::TenantArbiter)
/// reads (fair-share weight, priority).
///
/// ```
/// use eqc_core::policy::EquiEnsemble;
/// use eqc_core::{EqcConfig, PolicyConfig, TenantConfig};
///
/// let tenant = TenantConfig::new(EqcConfig::paper_qaoa().with_epochs(3))
///     .policies(PolicyConfig::default().with_weighting(EquiEnsemble))
///     .weight(2.0)
///     .priority(1)
///     .label("qaoa-prod");
/// assert!(tenant.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct TenantConfig {
    /// The tenant's training configuration.
    pub config: EqcConfig,
    /// The tenant's own policy stack (scheduler / weighting / health).
    pub policies: PolicyConfig,
    /// Fair-share weight: under
    /// [`FairShare`](crate::policy::arbiter::FairShare), fleet capacity
    /// splits proportionally to these. Must be positive and finite.
    pub weight: f64,
    /// Priority: under
    /// [`PriorityArbiter`](crate::policy::arbiter::PriorityArbiter),
    /// higher-priority tenants are served first.
    pub priority: i64,
    /// Telemetry label; defaults to `tenant<i>` at admission.
    pub label: Option<String>,
    /// Deadline budget in virtual hours on the tenant's own clock:
    /// under
    /// [`EarliestDeadlineFirst`](crate::policy::arbiter::EarliestDeadlineFirst)
    /// the tenant's SLO is to finish its epoch budget within this many
    /// virtual hours of its arrival. `None` (the default) means no SLO.
    pub deadline_h: Option<f64>,
}

impl TenantConfig {
    /// Creates a tenant description with the default policy stack,
    /// weight 1 and priority 0.
    pub fn new(config: EqcConfig) -> Self {
        TenantConfig {
            config,
            policies: PolicyConfig::default(),
            weight: 1.0,
            priority: 0,
            label: None,
            deadline_h: None,
        }
    }

    /// Builder-style policy-stack override.
    pub fn policies(mut self, policies: PolicyConfig) -> Self {
        self.policies = policies;
        self
    }

    /// Builder-style fair-share weight override.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Builder-style priority override.
    pub fn priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }

    /// Builder-style telemetry label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Builder-style deadline budget (virtual hours from arrival).
    pub fn deadline(mut self, hours: f64) -> Self {
        self.deadline_h = Some(hours);
        self
    }

    /// Validates the tenant description.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] on an invalid training
    /// configuration, a non-positive / non-finite fair-share weight, or
    /// a non-positive / non-finite deadline budget.
    pub fn validate(&self) -> Result<(), EqcError> {
        self.config.validate()?;
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(EqcError::InvalidConfig(format!(
                "tenant fair-share weight must be positive and finite, got {}",
                self.weight
            )));
        }
        if let Some(d) = self.deadline_h {
            if !(d.is_finite() && d > 0.0) {
                return Err(EqcError::InvalidConfig(format!(
                    "tenant deadline must be positive and finite virtual hours, got {d}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig::new(EqcConfig::default())
    }
}

/// Configuration of the bounded worker pool behind
/// [`PooledExecutor`](crate::PooledExecutor).
///
/// Defaults to one worker per hardware thread
/// ([`std::thread::available_parallelism`]) and deterministic
/// absorption, so the pool is a drop-in for the discrete-event executor
/// on fleets of any width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads to spawn; `None` resolves to the machine's
    /// available parallelism. Never more than one worker per client.
    pub workers: Option<usize>,
    /// When `true` (default), results are absorbed in the same
    /// earliest-virtual-completion total order as the
    /// [`DiscreteEventExecutor`](crate::DiscreteEventExecutor) — same
    /// seed, byte-identical report. When `false`, results are absorbed
    /// in arrival order (realistic, not reproducible), matching the
    /// [`ThreadedExecutor`](crate::ThreadedExecutor)'s semantics.
    pub deterministic: bool,
}

impl PoolConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] when an explicit worker count is
    /// zero.
    pub fn validate(&self) -> Result<(), EqcError> {
        if self.workers == Some(0) {
            return Err(EqcError::InvalidConfig(
                "pool worker count must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The worker count the pool actually spawns for `n_clients`
    /// clients: the configured (or detected) parallelism, capped at one
    /// worker per client.
    pub fn resolved_workers(&self, n_clients: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        };
        self.workers.unwrap_or_else(hw).min(n_clients).max(1)
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: None,
            deterministic: true,
        }
    }
}

/// Configuration of the always-on
/// [`FleetService`](crate::fleet::service::FleetService).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Cap on tenants waiting in the admission queue between drains;
    /// admissions beyond it fail with
    /// [`EqcError::AdmissionQueueFull`]. `None` (the default) leaves
    /// the queue unbounded.
    pub max_pending: Option<usize>,
}

impl ServiceConfig {
    /// Builder-style admission-queue bound.
    pub fn with_max_pending(mut self, cap: usize) -> Self {
        self.max_pending = Some(cap);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`EqcError::InvalidConfig`] when an explicit pending cap is
    /// zero (such a service could never admit anyone).
    pub fn validate(&self) -> Result<(), EqcError> {
        if self.max_pending == Some(0) {
            return Err(EqcError::InvalidConfig(
                "service admission-queue capacity must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = EqcConfig::paper_vqe();
        assert_eq!(c.learning_rate, 0.1);
        assert_eq!(c.shots, 8192);
        assert_eq!(c.epochs, 250);
        assert!(c.weight_bounds.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = EqcConfig::paper_qaoa()
            .with_epochs(10)
            .with_shots(128)
            .with_seed(3)
            .with_learning_rate(0.2)
            .with_weights(WeightBounds::new(0.25, 1.75).expect("valid band"));
        assert_eq!(c.epochs, 10);
        assert_eq!(c.shots, 128);
        assert_eq!(c.seed, 3);
        assert_eq!(c.learning_rate, 0.2);
        assert!(c.weight_bounds.is_some());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pool_config_resolves_and_validates() {
        let d = PoolConfig::default();
        assert!(d.deterministic);
        assert!(d.validate().is_ok());
        assert!(d.resolved_workers(1000) >= 1);
        assert!(
            d.resolved_workers(2) <= 2,
            "never more workers than clients"
        );
        let explicit = PoolConfig {
            workers: Some(8),
            deterministic: false,
        };
        assert_eq!(explicit.resolved_workers(256), 8);
        assert_eq!(explicit.resolved_workers(3), 3);
        assert!(matches!(
            PoolConfig {
                workers: Some(0),
                ..Default::default()
            }
            .validate(),
            Err(EqcError::InvalidConfig(_))
        ));
    }

    #[test]
    fn tenant_config_validates_weight_and_config() {
        let good = TenantConfig::new(EqcConfig::paper_qaoa().with_epochs(2));
        assert!(good.validate().is_ok());
        assert_eq!(good.weight, 1.0);
        assert_eq!(good.priority, 0);
        for bad_weight in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    TenantConfig::default().weight(bad_weight).validate(),
                    Err(EqcError::InvalidConfig(_))
                ),
                "weight {bad_weight} should be rejected"
            );
        }
        assert!(matches!(
            TenantConfig::new(EqcConfig::paper_qaoa().with_epochs(0)).validate(),
            Err(EqcError::InvalidConfig(_))
        ));
        let labeled = TenantConfig::default().label("prod").priority(3);
        assert_eq!(labeled.label.as_deref(), Some("prod"));
        assert_eq!(labeled.priority, 3);
    }

    #[test]
    fn tenant_deadlines_validate() {
        let slo = TenantConfig::default().deadline(12.5);
        assert_eq!(slo.deadline_h, Some(12.5));
        assert!(slo.validate().is_ok());
        assert!(TenantConfig::default().deadline_h.is_none());
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(
                    TenantConfig::default().deadline(bad).validate(),
                    Err(EqcError::InvalidConfig(_))
                ),
                "deadline {bad} should be rejected"
            );
        }
    }

    #[test]
    fn service_config_validates_the_pending_cap() {
        assert!(ServiceConfig::default().validate().is_ok());
        assert!(ServiceConfig::default().max_pending.is_none());
        let bounded = ServiceConfig::default().with_max_pending(4);
        assert_eq!(bounded.max_pending, Some(4));
        assert!(bounded.validate().is_ok());
        assert!(matches!(
            ServiceConfig::default().with_max_pending(0).validate(),
            Err(EqcError::InvalidConfig(_))
        ));
    }

    #[test]
    fn tuned_parallelism_validates_and_resolves() {
        use crate::error::EqcError;
        let tuned = SimParallelism::Tuned {
            workers: 4,
            min_dim: 2,
        };
        assert_eq!(tuned.lanes(), 4);
        assert!(EqcConfig::paper_qaoa()
            .with_sim_parallelism(tuned)
            .validate()
            .is_ok());
        assert!(matches!(
            EqcConfig::paper_qaoa()
                .with_sim_parallelism(SimParallelism::Tuned {
                    workers: 0,
                    min_dim: 64
                })
                .validate(),
            Err(EqcError::InvalidConfig(_))
        ));
        let ctx = SimParallelism::Tuned {
            workers: 2,
            min_dim: 8,
        }
        .build_ctx();
        assert_eq!(ctx.workers(), 2);
        assert_eq!(ctx.min_dim(), 8);
    }

    #[test]
    fn invalid_fields_become_typed_errors() {
        use crate::error::EqcError;
        for bad in [
            EqcConfig::paper_vqe().with_epochs(0),
            EqcConfig::paper_vqe().with_shots(0),
            EqcConfig::paper_vqe().with_learning_rate(0.0),
            EqcConfig::paper_vqe().with_learning_rate(-0.3),
            EqcConfig::paper_vqe().with_time_cap_hours(0.0),
        ] {
            assert!(
                matches!(bad.validate(), Err(EqcError::InvalidConfig(_))),
                "{bad:?} should be rejected"
            );
        }
    }
}
