//! A real multi-threaded executor for the EQC architecture.
//!
//! The paper builds its master/client system on Ray.io actors; this
//! module is the Rust equivalent: one OS thread per client node, crossbeam
//! channels for the task/result protocol, and a master loop applying ASGD
//! updates in true arrival order. Virtual device latencies still govern
//! the *recorded* timeline, but ordering is decided by the operating
//! system scheduler — so runs are realistic rather than reproducible.
//! The deterministic discrete-event executor in [`crate::trainer`] is the
//! default for experiments; this one demonstrates (and tests) that the
//! architecture works under genuine concurrency.

use crate::client::{ClientNode, ClientTaskResult};
use crate::config::EqcConfig;
use crate::report::{ClientStats, EpochRecord, TrainingReport, WeightSample};
use crossbeam::channel::{unbounded, Receiver, Sender};
use qdevice::SimTime;
use std::collections::HashMap;
use std::thread;
use vqa::{GradientTask, VqaProblem};

/// A task assignment sent to a client thread.
struct Assignment {
    task: GradientTask,
    params: Vec<f64>,
    cycle: usize,
    dispatched_at_update: u64,
}

/// A result returned by a client thread.
struct ThreadResult {
    client: usize,
    result: ClientTaskResult,
    cycle: usize,
    dispatched_at_update: u64,
}

/// Trains `problem` across the ensemble with one OS thread per client.
///
/// Semantics match [`crate::trainer::EqcTrainer`] (cyclic tasks, gather
/// per parameter, weighted ASGD updates) but arrival order is decided by
/// real thread scheduling.
///
/// # Panics
///
/// Panics if `clients` is empty or a client thread panics.
pub fn train_threaded(
    problem: &dyn VqaProblem,
    clients: Vec<ClientNode>,
    config: EqcConfig,
) -> TrainingReport {
    config.validate();
    assert!(!clients.is_empty(), "EQC needs at least one client");
    let n_clients = clients.len();
    let tasks = problem.tasks();
    let tasks_per_cycle = tasks.len();
    let params_per_cycle = problem.num_params();
    let mut slices_per_param: HashMap<usize, usize> = HashMap::new();
    for t in &tasks {
        *slices_per_param.entry(t.param.index()).or_insert(0) += 1;
    }

    let (result_tx, result_rx): (Sender<ThreadResult>, Receiver<ThreadResult>) = unbounded();

    // Spawn client threads; each owns its ClientNode and a task channel.
    let mut task_txs: Vec<Sender<Assignment>> = Vec::with_capacity(n_clients);
    thread::scope(|scope| {
        let mut device_names = Vec::with_capacity(n_clients);
        let mut handles = Vec::with_capacity(n_clients);
        for (idx, mut client) in clients.into_iter().enumerate() {
            device_names.push(client.device_name());
            let (tx, rx): (Sender<Assignment>, Receiver<Assignment>) = unbounded();
            task_txs.push(tx);
            let result_tx = result_tx.clone();
            let problem_ref: &dyn VqaProblem = problem;
            let shots = config.shots;
            handles.push(scope.spawn(move || {
                // Each client keeps its own virtual-time cursor: jobs on a
                // device are serialized, independent of other devices.
                let mut local_time = SimTime::ZERO;
                // tasks, circuits, p_sum, busy_seconds
                let mut stats = (0u64, 0u64, 0.0f64, 0.0f64);
                while let Ok(a) = rx.recv() {
                    let r = client.run_task(problem_ref, a.task, &a.params, shots, local_time);
                    local_time = r.completed;
                    stats.0 += 1;
                    stats.1 += r.circuits_run as u64;
                    stats.2 += r.p_correct;
                    stats.3 = client.backend().busy_seconds();
                    if result_tx
                        .send(ThreadResult {
                            client: idx,
                            result: r,
                            cycle: a.cycle,
                            dispatched_at_update: a.dispatched_at_update,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                stats
            }));
        }
        drop(result_tx);

        // Master loop.
        let mut theta = problem.initial_point(config.seed);
        let mut cursor = 0usize;
        let mut update_count = 0u64;
        let mut epochs_recorded = 0usize;
        struct Gather {
            remaining: usize,
            weighted_sum: f64,
        }
        let mut gathers: HashMap<(usize, usize), Gather> = HashMap::new();
        let mut last_p = vec![1.0f64; n_clients];
        let mut p_seen = vec![false; n_clients];
        let mut w_sums = vec![0.0f64; n_clients];
        let mut w_counts = vec![0u64; n_clients];
        let mut weight_trace: Vec<WeightSample> = Vec::new();
        let mut history: Vec<EpochRecord> = Vec::new();
        let mut staleness_max = 0u64;
        let mut staleness_sum = 0u64;
        let mut staleness_n = 0u64;
        let mut latest_time = SimTime::ZERO;

        let dispatch = |client_idx: usize,
                            cursor: &mut usize,
                            gathers: &mut HashMap<(usize, usize), Gather>,
                            theta: &[f64],
                            update_count: u64| {
            let cycle = *cursor / tasks_per_cycle;
            let task = tasks[*cursor % tasks_per_cycle];
            *cursor += 1;
            gathers.entry((cycle, task.param.index())).or_insert(Gather {
                remaining: slices_per_param[&task.param.index()],
                weighted_sum: 0.0,
            });
            task_txs[client_idx]
                .send(Assignment {
                    task,
                    params: theta.to_vec(),
                    cycle,
                    dispatched_at_update: update_count,
                })
                .expect("client thread alive");
        };

        for c in 0..n_clients {
            dispatch(c, &mut cursor, &mut gathers, &theta, update_count);
        }

        while epochs_recorded < config.epochs {
            let tr = result_rx.recv().expect("client threads alive");
            latest_time = latest_time.max(tr.result.completed);
            if let Some(cap) = config.max_virtual_hours {
                if tr.result.completed.as_hours() > cap {
                    break; // the paper's experiment cutoff
                }
            }
            last_p[tr.client] = tr.result.p_correct;
            p_seen[tr.client] = true;

            let w = match config.weight_bounds {
                Some(bounds) => {
                    let ws = crate::trainer::effective_weights(&last_p, &p_seen, bounds);
                    weight_trace.push(WeightSample {
                        virtual_hours: latest_time.as_hours(),
                        weights: ws.clone(),
                    });
                    ws[tr.client]
                }
                None => 1.0,
            };
            w_sums[tr.client] += w;
            w_counts[tr.client] += 1;

            let key = (tr.cycle, tr.result.task.param.index());
            let done = {
                let g = gathers.get_mut(&key).expect("gather exists");
                g.weighted_sum += w * tr.result.gradient;
                g.remaining -= 1;
                g.remaining == 0
            };
            if done {
                let g = gathers.remove(&key).expect("checked");
                let mut step = config.learning_rate * g.weighted_sum;
                if let Some(clip) = config.gradient_clip {
                    step = step.clamp(-clip, clip);
                }
                theta[tr.result.task.param.index()] -= step;
                update_count += 1;
                let staleness = update_count.saturating_sub(tr.dispatched_at_update + 1);
                staleness_max = staleness_max.max(staleness);
                staleness_sum += staleness;
                staleness_n += 1;
                if update_count as usize / params_per_cycle > epochs_recorded {
                    epochs_recorded = update_count as usize / params_per_cycle;
                    history.push(EpochRecord {
                        epoch: epochs_recorded,
                        virtual_hours: latest_time.as_hours(),
                        ideal_loss: problem.ideal_loss(&theta),
                    });
                }
            }
            if epochs_recorded >= config.epochs {
                break;
            }
            dispatch(tr.client, &mut cursor, &mut gathers, &theta, update_count);
        }

        // Shut the clients down and collect their stats.
        drop(task_txs);
        let mut client_stats = Vec::with_capacity(n_clients);
        for (i, h) in handles.into_iter().enumerate() {
            let (tasks_done, circuits, p_sum, busy_s) =
                h.join().expect("client thread panicked");
            client_stats.push(ClientStats {
                device: device_names[i].clone(),
                tasks_completed: tasks_done,
                circuits_run: circuits,
                mean_p_correct: if tasks_done > 0 {
                    p_sum / tasks_done as f64
                } else {
                    0.0
                },
                mean_weight: if w_counts[i] > 0 {
                    w_sums[i] / w_counts[i] as f64
                } else {
                    1.0
                },
                utilization: if latest_time.as_secs() > 0.0 {
                    (busy_s / latest_time.as_secs()).min(1.0)
                } else {
                    0.0
                },
            });
        }

        let final_loss = problem.ideal_loss(&theta);
        TrainingReport {
            problem: problem.name(),
            trainer: format!("eqc-threaded[{n_clients}]"),
            epochs: epochs_recorded,
            history,
            final_params: theta,
            final_loss,
            reference_minimum: problem.reference_minimum(),
            total_hours: latest_time.as_hours(),
            clients: client_stats,
            weight_trace,
            max_staleness: staleness_max as usize,
            mean_staleness: if staleness_n > 0 {
                staleness_sum as f64 / staleness_n as f64
            } else {
                0.0
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdevice::{catalog, DriftModel, QpuBackend, QueueModel};
    use vqa::QaoaProblem;

    fn quiet_clients(problem: &dyn VqaProblem, names: &[&str]) -> Vec<ClientNode> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let spec = catalog::by_name(n).unwrap();
                let mut cal = spec.calibration();
                cal.degrade(0.05, 1.0);
                let backend = QpuBackend::new(
                    spec.name,
                    spec.topology(),
                    cal,
                    DriftModel::none(),
                    QueueModel::light(1.0),
                    24.0,
                    200 + i as u64,
                );
                ClientNode::new(i, backend, problem).unwrap()
            })
            .collect()
    }

    #[test]
    fn threaded_eqc_converges() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(25).with_shots(1024);
        let report = train_threaded(&problem, clients, cfg);
        assert_eq!(report.epochs, 25);
        assert!(
            report.converged_loss(5) < -0.55,
            "converged {}",
            report.converged_loss(5)
        );
        let total: u64 = report.clients.iter().map(|c| c.tasks_completed).sum();
        assert!(total >= 50, "tasks {total}");
    }

    #[test]
    fn threaded_all_clients_participate() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota", "quito"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(12).with_shots(256);
        let report = train_threaded(&problem, clients, cfg);
        for c in &report.clients {
            assert!(c.tasks_completed > 0, "{} never ran", c.device);
        }
    }

    #[test]
    fn threaded_weighted_run() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "x2"]);
        let cfg = EqcConfig::paper_qaoa()
            .with_epochs(6)
            .with_shots(256)
            .with_weights(crate::weighting::WeightBounds::new(0.5, 1.5));
        let report = train_threaded(&problem, clients, cfg);
        assert!(!report.weight_trace.is_empty());
    }
}
