//! Deprecated threaded entry point, kept for one release as a shim over
//! [`ThreadedExecutor`](crate::executor::ThreadedExecutor).
//!
//! The paper builds its master/client system on Ray.io actors; the Rust
//! equivalent now lives in [`crate::executor`] as an [`Executor`]
//! implementation (one OS thread per client, channel-based protocol).
//!
//! [`Executor`]: crate::executor::Executor

use crate::client::ClientNode;
use crate::config::EqcConfig;
use crate::ensemble::EnsembleSession;
use crate::error::EqcError;
use crate::executor::{Executor, ThreadedExecutor};
use crate::report::TrainingReport;
use vqa::VqaProblem;

/// Trains `problem` across the ensemble with one OS thread per client.
///
/// Semantics match the discrete-event default (cyclic tasks, gather per
/// parameter, weighted ASGD updates) but arrival order is decided by
/// real thread scheduling.
///
/// # Errors
///
/// [`EqcError::InvalidConfig`] / [`EqcError::EmptyEnsemble`] instead of
/// the panics of the pre-0.2 API.
#[deprecated(
    since = "0.2.0",
    note = "use Ensemble::builder().…build()?.train_with(&ThreadedExecutor::new(), &problem)"
)]
pub fn train_threaded(
    problem: &dyn VqaProblem,
    clients: Vec<ClientNode>,
    config: EqcConfig,
) -> Result<TrainingReport, EqcError> {
    let mut session = EnsembleSession::from_clients(problem, config, clients)?;
    ThreadedExecutor::new().run(&mut session)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use qdevice::{catalog, DriftModel, QpuBackend, QueueModel};
    use vqa::QaoaProblem;

    fn quiet_clients(problem: &dyn VqaProblem, names: &[&str]) -> Vec<ClientNode> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let spec = catalog::by_name(n).unwrap();
                let mut cal = spec.calibration();
                cal.degrade(0.05, 1.0);
                let backend = QpuBackend::new(
                    &spec.name,
                    spec.topology(),
                    cal,
                    DriftModel::none(),
                    QueueModel::light(1.0),
                    24.0,
                    200 + i as u64,
                );
                ClientNode::new(i, backend, problem).unwrap()
            })
            .collect()
    }

    #[test]
    fn threaded_eqc_converges() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(25).with_shots(1024);
        let report = train_threaded(&problem, clients, cfg).unwrap();
        assert_eq!(report.epochs, 25);
        assert!(
            report.converged_loss(5) < -0.55,
            "converged {}",
            report.converged_loss(5)
        );
        let total: u64 = report.clients.iter().map(|c| c.tasks_completed).sum();
        assert!(total >= 50, "tasks {total}");
    }

    #[test]
    fn threaded_all_clients_participate() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "manila", "bogota", "quito"]);
        let cfg = EqcConfig::paper_qaoa().with_epochs(12).with_shots(256);
        let report = train_threaded(&problem, clients, cfg).unwrap();
        for c in &report.clients {
            assert!(c.tasks_completed > 0, "{} never ran", c.device);
        }
    }

    #[test]
    fn threaded_weighted_run() {
        let problem = QaoaProblem::maxcut_ring4();
        let clients = quiet_clients(&problem, &["belem", "x2"]);
        let cfg = EqcConfig::paper_qaoa()
            .with_epochs(6)
            .with_shots(256)
            .with_weights(crate::weighting::WeightBounds::new(0.5, 1.5).unwrap());
        let report = train_threaded(&problem, clients, cfg).unwrap();
        assert!(!report.weight_trace.is_empty());
    }
}
