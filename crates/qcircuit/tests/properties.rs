//! Property-based tests of the circuit IR and Pauli layer.

use proptest::prelude::*;
use qcircuit::measure::MeasurementPlan;
use qcircuit::pauli::{Hamiltonian, PauliString};
use qcircuit::{Angle, Circuit, Gate, ParamId};
use qsim::Pauli;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(arb_pauli(), n).prop_map(PauliString::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Label round trip: parse(display(s)) == s.
    #[test]
    fn pauli_label_roundtrip(s in arb_string(5)) {
        let label = s.to_string();
        let parsed = PauliString::from_label(&label).expect("valid label");
        prop_assert_eq!(parsed, s);
    }

    /// Qubit-wise commutation is symmetric and reflexive.
    #[test]
    fn qubitwise_commutation_properties(a in arb_string(4), b in arb_string(4)) {
        prop_assert!(a.commutes_qubitwise(&a));
        prop_assert_eq!(a.commutes_qubitwise(&b), b.commutes_qubitwise(&a));
    }

    /// Pauli-string matrices are unitary, Hermitian and traceless unless
    /// identity.
    #[test]
    fn pauli_matrix_structure(s in arb_string(3)) {
        let m = s.matrix();
        prop_assert!(m.is_unitary(1e-10));
        prop_assert!(m.is_hermitian(1e-10));
        if s.is_identity() {
            prop_assert!((m.trace().re - 8.0).abs() < 1e-10);
        } else {
            prop_assert!(m.trace().abs() < 1e-10);
        }
    }

    /// A measurement plan always partitions the Hamiltonian's terms, and
    /// grouping never produces more groups than terms.
    #[test]
    fn plan_partitions_terms(
        strings in proptest::collection::vec(arb_string(4), 1..12),
        coeffs in proptest::collection::vec(-2.0..2.0f64, 12),
    ) {
        let mut h = Hamiltonian::new(4);
        for (s, c) in strings.iter().zip(&coeffs) {
            h.add_term(*c, s.clone());
        }
        let plan = MeasurementPlan::grouped(&h);
        let mut covered: Vec<usize> = plan
            .groups()
            .iter()
            .flat_map(|g| g.term_indices().iter().copied())
            .collect();
        covered.sort_unstable();
        let expected: Vec<usize> = (0..h.num_terms()).collect();
        prop_assert_eq!(covered, expected);
        prop_assert!(plan.groups().len() <= h.num_terms().max(1));
        // Every term must qubit-wise commute with its group's basis.
        for g in plan.groups() {
            for &idx in g.term_indices() {
                let term = &h.terms()[idx];
                for (q, p) in term.string.sparse_ops() {
                    prop_assert!(g.basis()[q] == p || g.basis()[q] == Pauli::I);
                }
            }
        }
    }

    /// Hamiltonian expectation from terms equals the dense-matrix path.
    #[test]
    fn expectation_paths_agree(
        strings in proptest::collection::vec(arb_string(3), 1..6),
        coeffs in proptest::collection::vec(-1.5..1.5f64, 6),
        a in -3.0..3.0f64,
        b in -3.0..3.0f64,
    ) {
        let mut h = Hamiltonian::new(3);
        for (s, c) in strings.iter().zip(&coeffs) {
            h.add_term(*c, s.clone());
        }
        let mut circ = Circuit::new(3);
        circ.push(Gate::Ry(0, Angle::Fixed(a))).unwrap();
        circ.push(Gate::Rx(1, Angle::Fixed(b))).unwrap();
        circ.push(Gate::Cx(0, 2)).unwrap();
        let sv = circ.run_statevector(&[]).unwrap();
        let by_terms = h.expectation(&sv);
        let dense = qsim::linalg::expectation(&h.matrix(), sv.amplitudes());
        prop_assert!((by_terms - dense).abs() < 1e-9);
    }

    /// Binding then running equals running with the parameter vector.
    #[test]
    fn bind_and_run_commute(
        p0 in -3.0..3.0f64,
        p1 in -3.0..3.0f64,
    ) {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, Angle::sym(0))).unwrap();
        c.push(Gate::Rzz(0, 1, Angle::sym(1))).unwrap();
        c.push(Gate::Rx(1, Angle::affine(0, 2.0, 0.5))).unwrap();
        let params = [p0, p1];
        let direct = c.run_statevector(&params).unwrap();
        let bound = c.bind(&params).unwrap().run_statevector(&[]).unwrap();
        prop_assert!((direct.fidelity(&bound) - 1.0).abs() < 1e-9);
    }

    /// Occurrence lists are consistent with the parameter count.
    #[test]
    fn occurrences_cover_parameters(reps in 1usize..4) {
        let mut c = Circuit::new(2);
        for _ in 0..reps {
            c.push(Gate::Ry(0, Angle::sym(0))).unwrap();
            c.push(Gate::Rz(1, Angle::sym(1))).unwrap();
        }
        prop_assert_eq!(c.occurrences_of(ParamId(0)).len(), reps);
        prop_assert_eq!(c.occurrences_of(ParamId(1)).len(), reps);
        prop_assert_eq!(c.num_params(), 2);
    }

    /// Depth is monotone under gate append.
    #[test]
    fn depth_monotone(gates_n in 1usize..20) {
        let mut c = Circuit::new(3);
        let mut last_depth = 0;
        for k in 0..gates_n {
            c.push(Gate::H(k % 3)).unwrap();
            let d = c.depth();
            prop_assert!(d >= last_depth);
            last_depth = d;
        }
    }
}
