//! # qcircuit — circuit IR and Pauli algebra for the EQC reproduction
//!
//! Sits between the raw simulator ([`qsim`]) and the transpiler/VQA
//! layers:
//!
//! * [`gate::Gate`] + [`circuit::Circuit`] — a parameterized gate-list IR
//!   carrying the structural metrics of the paper's Eq. 2 (`G1`, `G2`,
//!   `CD`, `M`);
//! * [`param`] — symbolic angles over a shared `theta` vector, with the
//!   per-occurrence shifting the parameter-shift rule needs;
//! * [`pauli`] — Pauli strings and Hamiltonians (Eq. 1);
//! * [`measure`] — measurement-basis planning and expectation estimation
//!   from shot counts;
//! * [`builder::CircuitBuilder`] — fluent construction for the fixed
//!   ansatz shapes.
//!
//! ## Example: energy of a Bell state
//!
//! ```
//! use qcircuit::{CircuitBuilder, pauli::Hamiltonian};
//!
//! let mut b = CircuitBuilder::new(2);
//! b.h(0).cx(0, 1);
//! let circuit = b.build();
//!
//! let mut h = Hamiltonian::new(2);
//! h.add_label(1.0, "ZZ").unwrap();
//! let sv = circuit.run_statevector(&[])?;
//! assert!((h.expectation(&sv) - 1.0).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod circuit;
pub mod diagram;
pub mod gate;
pub mod measure;
pub mod param;
pub mod pauli;
pub mod qasm;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, CircuitError};
pub use gate::Gate;
pub use measure::{MeasurementGroup, MeasurementPlan};
pub use param::{Angle, ParamId};
pub use pauli::{Hamiltonian, PauliString, PauliTerm};
