//! Measurement planning: basis rotations, qubit-wise commuting grouping
//! and expectation estimation from hardware counts.
//!
//! A NISQ device only measures in the computational (Z) basis, so each
//! Pauli string needs basis-change gates appended before measurement:
//! `X -> H`, `Y -> Sdg, H`. Strings that qubit-wise commute share one
//! measurement setting; grouping them cuts the number of circuit
//! executions per loss evaluation, which matters when every execution
//! costs minutes of queue time (Section II of the paper).

use crate::circuit::{Circuit, CircuitError};
use crate::gate::Gate;
use crate::pauli::Hamiltonian;
use qsim::{Counts, Pauli};

/// A set of Hamiltonian terms measurable with one circuit execution.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementGroup {
    /// Per-qubit measurement basis. `I` means the qubit is unconstrained
    /// by every term in the group (measured in Z, ignored in estimation).
    basis: Vec<Pauli>,
    /// Indices into the originating Hamiltonian's term list.
    term_indices: Vec<usize>,
}

impl MeasurementGroup {
    /// Per-qubit measurement basis.
    pub fn basis(&self) -> &[Pauli] {
        &self.basis
    }

    /// Indices of the Hamiltonian terms covered by this group.
    pub fn term_indices(&self) -> &[usize] {
        &self.term_indices
    }

    /// The basis-rotation gates to append before measurement.
    pub fn rotation_gates(&self) -> Vec<Gate> {
        let mut gates = Vec::new();
        for (q, p) in self.basis.iter().enumerate() {
            match p {
                Pauli::I | Pauli::Z => {}
                Pauli::X => gates.push(Gate::H(q)),
                Pauli::Y => {
                    gates.push(Gate::Sdg(q));
                    gates.push(Gate::H(q));
                }
            }
        }
        gates
    }
}

/// A full measurement plan for a Hamiltonian: groups of qubit-wise
/// commuting terms, each with a shared basis.
///
/// # Examples
///
/// ```
/// use qcircuit::pauli::Hamiltonian;
/// use qcircuit::measure::MeasurementPlan;
///
/// let mut h = Hamiltonian::new(2);
/// h.add_label(1.0, "XX").unwrap();
/// h.add_label(1.0, "YY").unwrap();
/// h.add_label(1.0, "ZZ").unwrap();
/// h.add_label(0.5, "ZI").unwrap();
/// // ZZ and ZI share the Z basis; XX and YY need their own settings.
/// let plan = MeasurementPlan::grouped(&h);
/// assert_eq!(plan.groups().len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementPlan {
    n_qubits: usize,
    groups: Vec<MeasurementGroup>,
}

impl MeasurementPlan {
    /// Greedy qubit-wise-commuting grouping: each term joins the first
    /// group whose basis it is compatible with.
    pub fn grouped(h: &Hamiltonian) -> Self {
        let n = h.num_qubits();
        let mut groups: Vec<MeasurementGroup> = Vec::new();
        for (idx, term) in h.terms().iter().enumerate() {
            if term.string.is_identity() {
                // Constant offset: measurable with any group; track in the
                // first group (create one if none exists).
                if groups.is_empty() {
                    groups.push(MeasurementGroup {
                        basis: vec![Pauli::I; n],
                        term_indices: Vec::new(),
                    });
                }
                groups[0].term_indices.push(idx);
                continue;
            }
            let slot = groups.iter_mut().find(|g| {
                (0..n).all(|q| {
                    let need = term.string.pauli(q);
                    need == Pauli::I || g.basis[q] == Pauli::I || g.basis[q] == need
                })
            });
            match slot {
                Some(g) => {
                    for q in 0..n {
                        let need = term.string.pauli(q);
                        if need != Pauli::I {
                            g.basis[q] = need;
                        }
                    }
                    g.term_indices.push(idx);
                }
                None => {
                    let mut basis = vec![Pauli::I; n];
                    for (q, p) in term.string.sparse_ops() {
                        basis[q] = p;
                    }
                    groups.push(MeasurementGroup {
                        basis,
                        term_indices: vec![idx],
                    });
                }
            }
        }
        MeasurementPlan {
            n_qubits: n,
            groups,
        }
    }

    /// One group per term — the ungrouped baseline (ablation: measurement
    /// grouping on/off).
    pub fn per_term(h: &Hamiltonian) -> Self {
        let n = h.num_qubits();
        let groups = h
            .terms()
            .iter()
            .enumerate()
            .map(|(idx, term)| {
                let mut basis = vec![Pauli::I; n];
                for (q, p) in term.string.sparse_ops() {
                    basis[q] = p;
                }
                MeasurementGroup {
                    basis,
                    term_indices: vec![idx],
                }
            })
            .collect();
        MeasurementPlan {
            n_qubits: n,
            groups,
        }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The measurement groups.
    pub fn groups(&self) -> &[MeasurementGroup] {
        &self.groups
    }

    /// Builds the executable circuit for one group: `base` followed by the
    /// group's basis rotations.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] if the rotations do not fit `base`
    /// (width mismatch).
    pub fn circuit_for_group(
        &self,
        base: &Circuit,
        group: &MeasurementGroup,
    ) -> Result<Circuit, CircuitError> {
        let mut c = base.clone();
        c.extend(group.rotation_gates())?;
        Ok(c)
    }

    /// Estimates `<H>` from one [`Counts`] histogram per group.
    ///
    /// `counts[k]` must correspond to `groups()[k]`'s circuit. Bits are
    /// interpreted little-endian (qubit 0 = LSB), matching
    /// [`qsim::Counts`].
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != groups().len()`.
    pub fn expectation_from_counts(&self, h: &Hamiltonian, counts: &[Counts]) -> f64 {
        assert_eq!(
            counts.len(),
            self.groups.len(),
            "need one Counts histogram per measurement group"
        );
        let mut acc = 0.0;
        for (g, c) in self.groups.iter().zip(counts) {
            for &idx in &g.term_indices {
                let term = &h.terms()[idx];
                if term.string.is_identity() {
                    acc += term.coefficient;
                    continue;
                }
                let mask: u64 = term
                    .string
                    .support()
                    .iter()
                    .fold(0u64, |m, &q| m | (1 << q));
                acc += term.coefficient * c.expectation_z_product(mask);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn heisenberg_pair() -> Hamiltonian {
        let mut h = Hamiltonian::new(2);
        h.add_label(1.0, "XX").unwrap();
        h.add_label(1.0, "YY").unwrap();
        h.add_label(1.0, "ZZ").unwrap();
        h
    }

    #[test]
    fn grouping_is_a_partition_of_terms() {
        let h = heisenberg_pair();
        let plan = MeasurementPlan::grouped(&h);
        let mut seen: Vec<usize> = plan
            .groups()
            .iter()
            .flat_map(|g| g.term_indices().iter().copied())
            .collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn grouped_never_exceeds_per_term() {
        let mut h = heisenberg_pair();
        h.add_label(0.5, "ZI").unwrap();
        h.add_label(0.5, "IZ").unwrap();
        let grouped = MeasurementPlan::grouped(&h);
        let per_term = MeasurementPlan::per_term(&h);
        assert!(grouped.groups().len() <= per_term.groups().len());
        // ZZ, ZI, IZ share one setting -> exactly 3 groups.
        assert_eq!(grouped.groups().len(), 3);
        assert_eq!(per_term.groups().len(), 5);
    }

    #[test]
    fn rotation_gates_match_basis() {
        let mut h = Hamiltonian::new(3);
        h.add_label(1.0, "XYZ").unwrap();
        let plan = MeasurementPlan::grouped(&h);
        let gates = plan.groups()[0].rotation_gates();
        // qubit 2 = X -> H(2); qubit 1 = Y -> Sdg(1), H(1); qubit 0 = Z -> none.
        assert_eq!(gates, vec![Gate::Sdg(1), Gate::H(1), Gate::H(2)]);
    }

    #[test]
    fn counts_estimation_matches_statevector_for_bell() {
        // Exact distribution sampling at high shots should reproduce the
        // analytic expectation of the Heisenberg pair on a Bell state.
        let h = heisenberg_pair();
        let plan = MeasurementPlan::grouped(&h);
        let mut base = Circuit::new(2);
        base.push(Gate::H(0)).unwrap();
        base.push(Gate::Cx(0, 1)).unwrap();

        let mut rng = StdRng::seed_from_u64(11);
        let mut all_counts = Vec::new();
        for g in plan.groups() {
            let circ = plan.circuit_for_group(&base, g).unwrap();
            let sv = circ.run_statevector(&[]).unwrap();
            all_counts.push(sampler::sample_counts(
                &sv.probabilities(),
                2,
                200_000,
                &mut rng,
            ));
        }
        let est = plan.expectation_from_counts(&h, &all_counts);
        let exact = h.expectation(&base.run_statevector(&[]).unwrap());
        // Bell: XX=1, YY=-1, ZZ=1 -> 1.
        assert!((exact - 1.0).abs() < 1e-10);
        assert!(
            (est - exact).abs() < 0.02,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn identity_term_contributes_constant() {
        let mut h = Hamiltonian::new(1);
        h.add_label(2.5, "I").unwrap();
        h.add_label(1.0, "Z").unwrap();
        let plan = MeasurementPlan::grouped(&h);
        let mut counts = Counts::new(1);
        counts.record(0, 100); // always |0>: <Z> = +1
        let est = plan.expectation_from_counts(&h, &[counts]);
        assert!((est - 3.5).abs() < 1e-12);
    }

    #[test]
    fn basis_conflict_forces_new_group() {
        let mut h = Hamiltonian::new(1);
        h.add_label(1.0, "X").unwrap();
        h.add_label(1.0, "Z").unwrap();
        let plan = MeasurementPlan::grouped(&h);
        assert_eq!(plan.groups().len(), 2);
    }
}
