//! Circuit parameters: fixed angles and symbolic placeholders.
//!
//! VQA circuits are *templates*: rotation angles reference entries of a
//! shared parameter vector `theta` (the paper's `[theta]`). A [`ParamId`]
//! names one entry; [`Angle`] is either a bound constant or a symbolic
//! reference that [`crate::circuit::Circuit::bind`] resolves.

use std::fmt;

/// Index into the shared VQA parameter vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub usize);

impl ParamId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "theta[{}]", self.0)
    }
}

/// A rotation angle: a bound constant, a symbolic parameter, or an affine
/// function of one.
///
/// The affine form exists because basis rewriting is angle-shifting: the
/// transpiler turns `RX(theta)` into `RZ(pi/2) SX RZ(theta + pi) SX
/// RZ(pi/2)`, so a transpiled template must represent `theta + pi`
/// symbolically to stay re-bindable across gradient steps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Angle {
    /// A concrete angle in radians.
    Fixed(f64),
    /// A reference to the shared parameter vector.
    Sym(ParamId),
    /// `scale * theta[id] + offset`.
    Affine {
        /// Referenced parameter.
        id: ParamId,
        /// Multiplier applied to the parameter (chain-rule factor for
        /// gradients).
        scale: f64,
        /// Additive offset in radians.
        offset: f64,
    },
}

impl Angle {
    /// Convenience constructor for a symbolic angle.
    pub fn sym(index: usize) -> Angle {
        Angle::Sym(ParamId(index))
    }

    /// Convenience constructor for `scale * theta[index] + offset`.
    pub fn affine(index: usize, scale: f64, offset: f64) -> Angle {
        Angle::Affine {
            id: ParamId(index),
            scale,
            offset,
        }
    }

    /// Returns `self + offset`, preserving symbolic structure.
    pub fn shifted(self, delta: f64) -> Angle {
        match self {
            Angle::Fixed(v) => Angle::Fixed(v + delta),
            Angle::Sym(p) => Angle::Affine {
                id: p,
                scale: 1.0,
                offset: delta,
            },
            Angle::Affine { id, scale, offset } => Angle::Affine {
                id,
                scale,
                offset: offset + delta,
            },
        }
    }

    /// Returns the bound value, or `None` if symbolic.
    pub fn value(self) -> Option<f64> {
        match self {
            Angle::Fixed(v) => Some(v),
            Angle::Sym(_) | Angle::Affine { .. } => None,
        }
    }

    /// Returns the parameter id, or `None` if fixed.
    pub fn param(self) -> Option<ParamId> {
        match self {
            Angle::Fixed(_) => None,
            Angle::Sym(p) => Some(p),
            Angle::Affine { id, .. } => Some(id),
        }
    }

    /// The `d(angle)/d(theta)` chain-rule factor: 0 for fixed angles,
    /// 1 for plain symbols, `scale` for affine angles.
    pub fn gradient_scale(self) -> f64 {
        match self {
            Angle::Fixed(_) => 0.0,
            Angle::Sym(_) => 1.0,
            Angle::Affine { scale, .. } => scale,
        }
    }

    /// Resolves the angle against a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if symbolic and the id is out of range of `params`.
    pub fn resolve(self, params: &[f64]) -> f64 {
        match self {
            Angle::Fixed(v) => v,
            Angle::Sym(p) => params[p.0],
            Angle::Affine { id, scale, offset } => scale * params[id.0] + offset,
        }
    }

    /// Returns `true` if the angle references a parameter.
    pub fn is_symbolic(self) -> bool {
        !matches!(self, Angle::Fixed(_))
    }
}

impl From<f64> for Angle {
    fn from(v: f64) -> Self {
        Angle::Fixed(v)
    }
}

impl From<ParamId> for Angle {
    fn from(p: ParamId) -> Self {
        Angle::Sym(p)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Angle::Fixed(v) => write!(f, "{v:.4}"),
            Angle::Sym(p) => write!(f, "{p}"),
            Angle::Affine { id, scale, offset } => {
                write!(f, "{scale:.4}*{id}{offset:+.4}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_fixed_ignores_params() {
        assert_eq!(Angle::Fixed(1.5).resolve(&[]), 1.5);
    }

    #[test]
    fn resolve_symbolic_indexes_vector() {
        assert_eq!(Angle::sym(1).resolve(&[0.0, 2.5]), 2.5);
    }

    #[test]
    fn conversions() {
        assert_eq!(Angle::from(0.5), Angle::Fixed(0.5));
        assert_eq!(Angle::from(ParamId(3)), Angle::sym(3));
        assert_eq!(Angle::sym(3).param(), Some(ParamId(3)));
        assert_eq!(Angle::Fixed(0.1).param(), None);
        assert_eq!(Angle::sym(3).value(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Angle::sym(2).to_string(), "theta[2]");
        assert_eq!(Angle::Fixed(0.25).to_string(), "0.2500");
    }

    #[test]
    #[should_panic]
    fn resolve_out_of_range_panics() {
        let _ = Angle::sym(5).resolve(&[1.0]);
    }

    #[test]
    fn affine_resolution_and_scale() {
        let a = Angle::affine(0, 2.0, 0.5);
        assert!((a.resolve(&[1.5]) - 3.5).abs() < 1e-12);
        assert_eq!(a.gradient_scale(), 2.0);
        assert_eq!(Angle::sym(0).gradient_scale(), 1.0);
        assert_eq!(Angle::Fixed(1.0).gradient_scale(), 0.0);
        assert_eq!(a.param(), Some(ParamId(0)));
        assert!(a.is_symbolic());
    }

    #[test]
    fn shifted_preserves_symbolic_structure() {
        let s = Angle::sym(2).shifted(std::f64::consts::PI);
        assert!((s.resolve(&[0.0, 0.0, 1.0]) - (1.0 + std::f64::consts::PI)).abs() < 1e-12);
        assert_eq!(Angle::Fixed(1.0).shifted(0.5), Angle::Fixed(1.5));
        let t = Angle::affine(0, 3.0, 1.0).shifted(1.0);
        assert!((t.resolve(&[2.0]) - 8.0).abs() < 1e-12);
    }
}
