//! The gate alphabet of the circuit IR.
//!
//! The set covers what the paper's workloads need: the VQE ansatz (Fig. 8:
//! RY/RZ/CNOT), the QAOA circuit (Fig. 10: H/RZZ/RX), the GHZ calibration
//! probe (H/CNOT), plus the IBMQ native basis {CX, RZ, SX, X} targeted by
//! the transpiler and the SWAPs it inserts.

use crate::param::Angle;
use qsim::gates;
use qsim::CMatrix;
use std::fmt;

/// One circuit operation.
///
/// Two-qubit gates order their operands: for [`Gate::Cx`] the first field
/// is the control. Matrices follow the `|q1 q0>` little-endian convention
/// of [`qsim::gates`], where the *first operand* is `q0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// Phase gate S.
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// Square root of X (IBMQ native).
    Sx(usize),
    /// X-axis rotation.
    Rx(usize, Angle),
    /// Y-axis rotation.
    Ry(usize, Angle),
    /// Z-axis rotation (virtual on IBMQ hardware: zero duration/error).
    Rz(usize, Angle),
    /// CNOT; fields are `(control, target)`.
    Cx(usize, usize),
    /// Controlled-Z (symmetric).
    Cz(usize, usize),
    /// SWAP.
    Swap(usize, usize),
    /// Two-qubit ZZ rotation (QAOA cost layer).
    Rzz(usize, usize, Angle),
}

impl Gate {
    /// The qubits the gate acts on (1 or 2 entries, operand order).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::Sx(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => vec![q],
            Gate::Cx(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) | Gate::Rzz(a, b, _) => {
                vec![a, b]
            }
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Gate::Cx(..) | Gate::Cz(..) | Gate::Swap(..) | Gate::Rzz(..)
        )
    }

    /// Returns `true` for gates that are "virtual" on IBMQ hardware (frame
    /// changes with zero duration and error) — only [`Gate::Rz`].
    pub fn is_virtual(&self) -> bool {
        matches!(self, Gate::Rz(..))
    }

    /// The symbolic or fixed angle, if the gate is parameterized.
    pub fn angle(&self) -> Option<Angle> {
        match *self {
            Gate::Rx(_, a) | Gate::Ry(_, a) | Gate::Rz(_, a) | Gate::Rzz(_, _, a) => Some(a),
            _ => None,
        }
    }

    /// Replaces the angle of a parameterized gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate has no angle.
    pub fn with_angle(self, angle: Angle) -> Gate {
        match self {
            Gate::Rx(q, _) => Gate::Rx(q, angle),
            Gate::Ry(q, _) => Gate::Ry(q, angle),
            Gate::Rz(q, _) => Gate::Rz(q, angle),
            Gate::Rzz(a, b, _) => Gate::Rzz(a, b, angle),
            g => panic!("gate {g} has no angle"),
        }
    }

    /// Remaps qubit operands through `f` (used by routing and layout).
    pub fn map_qubits<F: Fn(usize) -> usize>(self, f: F) -> Gate {
        match self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::Sx(q) => Gate::Sx(f(q)),
            Gate::Rx(q, a) => Gate::Rx(f(q), a),
            Gate::Ry(q, a) => Gate::Ry(f(q), a),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Cz(a, b) => Gate::Cz(f(a), f(b)),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Rzz(a, b, t) => Gate::Rzz(f(a), f(b), t),
        }
    }

    /// The unitary matrix of the gate, resolving symbolic angles against
    /// `params`.
    ///
    /// # Panics
    ///
    /// Panics if a symbolic angle's id is out of range of `params`.
    pub fn matrix(&self, params: &[f64]) -> CMatrix {
        match *self {
            Gate::H(_) => gates::h(),
            Gate::X(_) => gates::x(),
            Gate::Y(_) => gates::y(),
            Gate::Z(_) => gates::z(),
            Gate::S(_) => gates::s(),
            Gate::Sdg(_) => gates::sdg(),
            Gate::Sx(_) => gates::sx(),
            Gate::Rx(_, a) => gates::rx(a.resolve(params)),
            Gate::Ry(_, a) => gates::ry(a.resolve(params)),
            Gate::Rz(_, a) => gates::rz(a.resolve(params)),
            Gate::Cx(..) => gates::cx(),
            Gate::Cz(..) => gates::cz(),
            Gate::Swap(..) => gates::swap(),
            Gate::Rzz(_, _, a) => gates::rzz(a.resolve(params)),
        }
    }

    /// Lower-case OpenQASM-style mnemonic.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::Sx(_) => "sx",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::Cx(..) => "cx",
            Gate::Cz(..) => "cz",
            Gate::Swap(..) => "swap",
            Gate::Rzz(..) => "rzz",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.angle() {
            Some(a) => write!(f, "{}({}) {:?}", self.name(), a, self.qubits()),
            None => write!(f, "{} {:?}", self.name(), self.qubits()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_lists_and_arity() {
        assert_eq!(Gate::H(3).qubits(), vec![3]);
        assert_eq!(Gate::Cx(1, 2).qubits(), vec![1, 2]);
        assert!(Gate::Cx(0, 1).is_two_qubit());
        assert!(!Gate::Sx(0).is_two_qubit());
    }

    #[test]
    fn only_rz_is_virtual() {
        assert!(Gate::Rz(0, Angle::Fixed(0.1)).is_virtual());
        for g in [
            Gate::H(0),
            Gate::Sx(0),
            Gate::X(0),
            Gate::Rx(0, Angle::Fixed(0.3)),
            Gate::Cx(0, 1),
        ] {
            assert!(!g.is_virtual(), "{g} should not be virtual");
        }
    }

    #[test]
    fn angle_roundtrip() {
        let g = Gate::Ry(2, Angle::sym(4));
        assert_eq!(g.angle(), Some(Angle::sym(4)));
        let bound = g.with_angle(Angle::Fixed(0.7));
        assert_eq!(bound.angle(), Some(Angle::Fixed(0.7)));
        assert_eq!(Gate::X(0).angle(), None);
    }

    #[test]
    #[should_panic(expected = "has no angle")]
    fn with_angle_on_fixed_gate_panics() {
        let _ = Gate::H(0).with_angle(Angle::Fixed(0.0));
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Cx(0, 1).map_qubits(|q| q + 5);
        assert_eq!(g, Gate::Cx(5, 6));
    }

    #[test]
    fn matrix_resolves_symbols() {
        let g = Gate::Ry(0, Angle::sym(0));
        let m = g.matrix(&[std::f64::consts::PI]);
        assert!(m.approx_eq_up_to_phase(&qsim::gates::y(), 1e-12));
    }

    #[test]
    fn display_contains_mnemonic() {
        let g = Gate::Rzz(0, 1, Angle::sym(1));
        let s = g.to_string();
        assert!(s.contains("rzz"));
        assert!(s.contains("theta[1]"));
    }
}
