//! ASCII circuit diagrams.
//!
//! Renders a [`Circuit`] as per-qubit wire rows with layered gate boxes —
//! a terminal rendition of the paper's circuit figures (Figs. 8 and 10).
//!
//! ```text
//! q0: ─[RY(t0)]─[RZ(t4)]──●───────────
//! q1: ─[RY(t1)]─[RZ(t5)]─[X]──●───────
//! q2: ─[RY(t2)]─[RZ(t6)]──────[X]──●──
//! q3: ─[RY(t3)]─[RZ(t7)]───────────[X]
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::param::Angle;

/// Renders the circuit as a multi-line ASCII diagram.
///
/// Gates are packed into time layers (a gate starts at the earliest layer
/// where all its operands are free). Controls draw as `●`, CX targets as
/// `[X]`, SWAP endpoints as `[x]`, and wires crossed by a two-qubit link
/// as `│`.
///
/// # Examples
///
/// ```
/// use qcircuit::{CircuitBuilder, diagram};
///
/// let mut b = CircuitBuilder::new(2);
/// b.h(0).cx(0, 1);
/// let art = diagram::render(&b.build());
/// assert!(art.contains("[H]"));
/// assert!(art.contains("●"));
/// ```
pub fn render(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    // Assign gates to layers.
    let mut frontier = vec![0usize; n];
    // cells[layer][qubit]
    let mut cells: Vec<Vec<Cell>> = Vec::new();
    for g in circuit.gates() {
        let qs = g.qubits();
        let layer = qs.iter().map(|&q| frontier[q]).max().unwrap_or(0);
        while cells.len() <= layer {
            cells.push(vec![Cell::Wire; n]);
        }
        match qs[..] {
            [q] => cells[layer][q] = Cell::Box(label_1q(g)),
            [a, b] => {
                let (ca, cb) = labels_2q(g);
                cells[layer][a] = ca;
                cells[layer][b] = cb;
                let (lo, hi) = (a.min(b), a.max(b));
                for cell in cells[layer][lo + 1..hi].iter_mut() {
                    if matches!(cell, Cell::Wire) {
                        *cell = Cell::Cross;
                    }
                }
            }
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
        for q in qs {
            frontier[q] = layer + 1;
        }
    }

    // Render with per-layer column widths.
    let widths: Vec<usize> = cells
        .iter()
        .map(|layer| layer.iter().map(Cell::width).max().unwrap_or(1))
        .collect();
    let mut out = String::new();
    let label_w = format!("q{}", n - 1).len();
    for q in 0..n {
        out.push_str(&format!("{:<label_w$}: ─", format!("q{q}")));
        for (layer, w) in cells.iter().zip(&widths) {
            out.push_str(&layer[q].render(*w));
            out.push('─');
        }
        out.push('\n');
    }
    out
}

#[derive(Clone, Debug)]
enum Cell {
    Wire,
    Cross,
    Control,
    Box(String),
}

impl Cell {
    fn width(&self) -> usize {
        match self {
            Cell::Wire | Cell::Cross | Cell::Control => 1,
            Cell::Box(s) => s.chars().count(),
        }
    }

    fn render(&self, w: usize) -> String {
        let (text, pad): (String, char) = match self {
            Cell::Wire => (String::new(), '─'),
            Cell::Cross => ("│".to_string(), '─'),
            Cell::Control => ("●".to_string(), '─'),
            Cell::Box(s) => (s.clone(), '─'),
        };
        // Center the text within the layer width, padding with wire.
        let len = text.chars().count();
        let total = w.saturating_sub(len);
        let left = total / 2;
        let right = total - left;
        let mut out = String::new();
        for _ in 0..left {
            out.push(pad);
        }
        out.push_str(&text);
        for _ in 0..right {
            out.push(pad);
        }
        out
    }
}

fn angle_label(a: Angle) -> String {
    match a {
        Angle::Fixed(v) => format!("{v:.2}"),
        Angle::Sym(p) => format!("t{}", p.index()),
        Angle::Affine { id, scale, offset } => {
            format!("{scale:.1}t{}{offset:+.1}", id.index())
        }
    }
}

fn label_1q(g: &Gate) -> String {
    match g.angle() {
        Some(a) => format!("[{}({})]", g.name().to_uppercase(), angle_label(a)),
        None => format!("[{}]", g.name().to_uppercase()),
    }
}

fn labels_2q(g: &Gate) -> (Cell, Cell) {
    match g {
        Gate::Cx(..) => (Cell::Control, Cell::Box("[X]".to_string())),
        Gate::Cz(..) => (Cell::Control, Cell::Control),
        Gate::Swap(..) => (Cell::Box("[x]".into()), Cell::Box("[x]".into())),
        Gate::Rzz(_, _, a) => (
            Cell::Control,
            Cell::Box(format!("[ZZ({})]", angle_label(*a))),
        ),
        _ => unreachable!("only two-qubit gates"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn bell_diagram_structure() {
        let mut b = CircuitBuilder::new(2);
        b.h(0).cx(0, 1);
        let art = render(&b.build());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("q0:"));
        assert!(lines[0].contains("[H]"));
        assert!(lines[0].contains('●'));
        assert!(lines[1].contains("[X]"));
        // Rows align.
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }

    #[test]
    fn crossing_wires_marked() {
        let mut b = CircuitBuilder::new(3);
        b.cx(0, 2);
        let art = render(&b.build());
        let lines: Vec<&str> = art.lines().collect();
        assert!(
            lines[1].contains('│'),
            "middle wire should show the link crossing"
        );
    }

    #[test]
    fn symbolic_angles_shown_as_parameters() {
        let mut b = CircuitBuilder::new(1);
        b.ry_sym(0, 3);
        let art = render(&b.build());
        assert!(art.contains("[RY(t3)]"), "{art}");
    }

    #[test]
    fn layers_pack_parallel_gates() {
        let mut b = CircuitBuilder::new(2);
        b.h(0).h(1).cx(0, 1);
        let art = render(&b.build());
        // Both H gates share a layer: each row shows exactly one [H].
        for line in art.lines() {
            assert_eq!(line.matches("[H]").count(), 1);
        }
    }

    #[test]
    fn fig8_ansatz_renders_every_row() {
        let c = crate::builder::CircuitBuilder::new(4).build();
        let _ = c; // silence builder import path
        let ansatz_art = render(&paper_ansatz());
        assert_eq!(ansatz_art.lines().count(), 4);
        assert!(ansatz_art.contains("[RY(t0)]"));
        assert!(ansatz_art.contains("[RZ(t15)]"));
        let widths: Vec<usize> = ansatz_art.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "rows must align");
    }

    fn paper_ansatz() -> Circuit {
        let mut b = CircuitBuilder::new(4);
        let mut p = 0;
        for q in 0..4 {
            b.ry_sym(q, p);
            p += 1;
        }
        for q in 0..4 {
            b.rz_sym(q, p);
            p += 1;
        }
        for q in 0..3 {
            b.cx(q, q + 1);
        }
        for q in 0..4 {
            b.ry_sym(q, p);
            p += 1;
        }
        for q in 0..4 {
            b.rz_sym(q, p);
            p += 1;
        }
        b.build()
    }

    #[test]
    fn rzz_and_swap_symbols() {
        let mut b = CircuitBuilder::new(2);
        b.rzz_sym(0, 1, 0).swap(0, 1);
        let art = render(&b.build());
        assert!(art.contains("[ZZ(t0)]"));
        assert!(art.contains("[x]"));
    }
}
