//! Pauli strings and Hamiltonians.
//!
//! VQE Hamiltonians arrive as weighted sums of Pauli strings (the paper
//! parallelizes VQE "at the Pauli string level", Section III-A). This
//! module provides the string/Hamiltonian algebra; measurement grouping
//! and counts-based estimation live in [`crate::measure`].

use qsim::linalg;
use qsim::{CMatrix, Pauli, StateVector, C64};
use std::fmt;

/// A tensor product of single-qubit Paulis over a fixed register width.
///
/// Internally stored qubit-0-first; [`PauliString::from_label`] accepts the
/// conventional big-endian label where the **leftmost character is the
/// highest qubit** (matching Qiskit's `Pauli("XY")` = X on qubit 1, Y on
/// qubit 0).
///
/// # Examples
///
/// ```
/// use qcircuit::pauli::PauliString;
/// use qsim::Pauli;
///
/// let p = PauliString::from_label("XZI").unwrap();
/// assert_eq!(p.num_qubits(), 3);
/// assert_eq!(p.pauli(0), Pauli::I);
/// assert_eq!(p.pauli(2), Pauli::X);
/// assert_eq!(p.to_string(), "XZI");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// The all-identity string over `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Builds a string from a qubit-0-first Pauli list.
    pub fn new(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// Builds a string from sparse `(qubit, pauli)` pairs over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit repeats or exceeds `n`.
    pub fn from_sparse(n: usize, ops: &[(usize, Pauli)]) -> Self {
        let mut paulis = vec![Pauli::I; n];
        for &(q, p) in ops {
            assert!(q < n, "qubit {q} out of range");
            assert!(paulis[q] == Pauli::I, "duplicate qubit {q}");
            paulis[q] = p;
        }
        PauliString { paulis }
    }

    /// Parses a big-endian label such as `"XXIZ"`.
    ///
    /// Returns `None` on any non-Pauli character.
    pub fn from_label(label: &str) -> Option<Self> {
        let mut paulis: Vec<Pauli> = label
            .chars()
            .map(Pauli::from_label)
            .collect::<Option<Vec<_>>>()?;
        paulis.reverse(); // label is MSB-first, storage is qubit-0-first
        Some(PauliString { paulis })
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// Pauli on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[inline]
    pub fn pauli(&self, q: usize) -> Pauli {
        self.paulis[q]
    }

    /// Qubits with a non-identity Pauli, ascending.
    pub fn support(&self) -> Vec<usize> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != Pauli::I)
            .map(|(q, _)| q)
            .collect()
    }

    /// Number of non-identity factors (the string's weight).
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// Returns `true` if the string is all-identity.
    pub fn is_identity(&self) -> bool {
        self.weight() == 0
    }

    /// Sparse `(qubit, pauli)` view of the non-identity factors.
    pub fn sparse_ops(&self) -> Vec<(usize, Pauli)> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, p)| **p != Pauli::I)
            .map(|(q, p)| (q, *p))
            .collect()
    }

    /// Qubit-wise commutation: `true` if on every qubit the factors
    /// commute. Strings that qubit-wise commute can share one measurement
    /// basis.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn commutes_qubitwise(&self, other: &PauliString) -> bool {
        assert_eq!(self.num_qubits(), other.num_qubits(), "width mismatch");
        self.paulis
            .iter()
            .zip(&other.paulis)
            .all(|(a, b)| a.commutes_with(*b))
    }

    /// Dense `2^n x 2^n` matrix (small registers only).
    ///
    /// # Panics
    ///
    /// Panics if `n > 12`.
    pub fn matrix(&self) -> CMatrix {
        assert!(
            self.num_qubits() <= 12,
            "dense Pauli matrix capped at 12 qubits"
        );
        let mut m = CMatrix::identity(1);
        for p in self.paulis.iter().rev() {
            m = m.kron(&p.matrix());
        }
        m
    }

    /// Expectation value on a pure state.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn expectation(&self, sv: &StateVector) -> f64 {
        assert_eq!(self.num_qubits(), sv.num_qubits(), "width mismatch");
        if self.is_identity() {
            return 1.0;
        }
        sv.expectation_pauli(&self.sparse_ops())
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.paulis.iter().rev() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// One weighted term of a Hamiltonian.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliTerm {
    /// Real coefficient (Hamiltonians are Hermitian).
    pub coefficient: f64,
    /// The Pauli string.
    pub string: PauliString,
}

impl fmt::Display for PauliTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6} * {}", self.coefficient, self.string)
    }
}

/// A Hermitian operator expressed as a weighted sum of Pauli strings —
/// the `H` of Eq. 1 in the paper.
///
/// # Examples
///
/// ```
/// use qcircuit::pauli::Hamiltonian;
///
/// // H = 0.5 * ZZ - 1.0 * XI
/// let mut h = Hamiltonian::new(2);
/// h.add_label(0.5, "ZZ").unwrap();
/// h.add_label(-1.0, "XI").unwrap();
/// assert_eq!(h.num_terms(), 2);
/// let (e0, _) = h.ground_state();
/// assert!(e0 < 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Hamiltonian {
    n_qubits: usize,
    terms: Vec<PauliTerm>,
}

impl Hamiltonian {
    /// Creates an empty Hamiltonian over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Hamiltonian {
            n_qubits,
            terms: Vec::new(),
        }
    }

    /// Adds a term. Duplicate strings are merged by summing coefficients.
    ///
    /// # Panics
    ///
    /// Panics if the string width disagrees with the Hamiltonian width.
    pub fn add_term(&mut self, coefficient: f64, string: PauliString) {
        assert_eq!(
            string.num_qubits(),
            self.n_qubits,
            "term width does not match Hamiltonian"
        );
        if let Some(t) = self.terms.iter_mut().find(|t| t.string == string) {
            t.coefficient += coefficient;
        } else {
            self.terms.push(PauliTerm {
                coefficient,
                string,
            });
        }
    }

    /// Adds a term from a big-endian label.
    ///
    /// # Errors
    ///
    /// Returns the offending label on parse failure or width mismatch.
    pub fn add_label<'a>(&mut self, coefficient: f64, label: &'a str) -> Result<(), &'a str> {
        let s = PauliString::from_label(label).ok_or(label)?;
        if s.num_qubits() != self.n_qubits {
            return Err(label);
        }
        self.add_term(coefficient, s);
        Ok(())
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of terms.
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Borrows the terms.
    #[inline]
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// Dense matrix representation (small registers only).
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 12`.
    pub fn matrix(&self) -> CMatrix {
        let dim = 1usize << self.n_qubits;
        let mut m = CMatrix::zeros(dim, dim);
        for t in &self.terms {
            m = m + t.string.matrix().scale(C64::from_real(t.coefficient));
        }
        m
    }

    /// Exact smallest eigenvalue and ground state via dense
    /// diagonalization — the reference energy for every convergence figure.
    pub fn ground_state(&self) -> (f64, Vec<C64>) {
        linalg::ground_state(&self.matrix())
    }

    /// Exact largest eigenvalue (used to normalize error percentages).
    pub fn max_eigenvalue(&self) -> f64 {
        let eig = linalg::eigh(&self.matrix());
        *eig.values.last().expect("non-empty spectrum")
    }

    /// Expectation value on a pure state: `sum_i c_i <psi|P_i|psi>`.
    pub fn expectation(&self, sv: &StateVector) -> f64 {
        self.terms
            .iter()
            .map(|t| t.coefficient * t.string.expectation(sv))
            .sum()
    }
}

impl fmt::Display for Hamiltonian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Hamiltonian[{} qubits, {} terms]",
            self.n_qubits,
            self.terms.len()
        )?;
        for t in &self.terms {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Gate;

    #[test]
    fn label_roundtrip_is_big_endian() {
        let p = PauliString::from_label("XYZ").unwrap();
        assert_eq!(p.pauli(2), Pauli::X);
        assert_eq!(p.pauli(1), Pauli::Y);
        assert_eq!(p.pauli(0), Pauli::Z);
        assert_eq!(p.to_string(), "XYZ");
        assert!(PauliString::from_label("XQ").is_none());
    }

    #[test]
    fn sparse_construction() {
        let p = PauliString::from_sparse(4, &[(0, Pauli::X), (3, Pauli::Z)]);
        assert_eq!(p.to_string(), "ZIIX");
        assert_eq!(p.support(), vec![0, 3]);
        assert_eq!(p.weight(), 2);
    }

    #[test]
    fn qubitwise_commutation() {
        let a = PauliString::from_label("XIZ").unwrap();
        let b = PauliString::from_label("XZZ").unwrap();
        let c = PauliString::from_label("ZIZ").unwrap();
        assert!(a.commutes_qubitwise(&b));
        assert!(!a.commutes_qubitwise(&c)); // X vs Z on qubit 2
        assert!(b.commutes_qubitwise(&b));
    }

    #[test]
    fn matrix_of_zz() {
        let p = PauliString::from_label("ZZ").unwrap();
        let m = p.matrix();
        for (i, sign) in [(0usize, 1.0), (1, -1.0), (2, -1.0), (3, 1.0)] {
            assert!((m[(i, i)].re - sign).abs() < 1e-12);
        }
    }

    #[test]
    fn expectation_identity_is_one() {
        let sv = StateVector::new(3);
        assert_eq!(PauliString::identity(3).expectation(&sv), 1.0);
    }

    #[test]
    fn hamiltonian_merges_duplicate_terms() {
        let mut h = Hamiltonian::new(2);
        h.add_label(0.5, "ZZ").unwrap();
        h.add_label(0.25, "ZZ").unwrap();
        assert_eq!(h.num_terms(), 1);
        assert!((h.terms()[0].coefficient - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ground_state_of_zz() {
        let mut h = Hamiltonian::new(2);
        h.add_label(1.0, "ZZ").unwrap();
        let (e0, _) = h.ground_state();
        assert!((e0 + 1.0).abs() < 1e-9);
        assert!((h.max_eigenvalue() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expectation_matches_dense() {
        let mut h = Hamiltonian::new(2);
        h.add_label(0.7, "XX").unwrap();
        h.add_label(-0.3, "ZI").unwrap();
        h.add_label(0.2, "YY").unwrap();
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cx(0, 1)).unwrap();
        let sv = c.run_statevector(&[]).unwrap();
        let via_terms = h.expectation(&sv);
        let via_dense = qsim::linalg::expectation(&h.matrix(), sv.amplitudes());
        assert!((via_terms - via_dense).abs() < 1e-10);
        // Bell state: <XX> = 1, <YY> = -1, <ZI> = 0 -> 0.7 - 0.2 = 0.5.
        assert!((via_terms - 0.5).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "width does not match")]
    fn add_term_rejects_width_mismatch() {
        let mut h = Hamiltonian::new(2);
        h.add_term(1.0, PauliString::identity(3));
    }
}
