//! OpenQASM 2.0 interchange.
//!
//! The paper's stack sits on OpenQASM (Cross et al., cited as \[12\]):
//! circuits shipped to IBMQ are QASM programs. This module exports any
//! *bound* [`Circuit`] to OpenQASM 2.0 and parses the same subset back,
//! enabling interchange with Qiskit-era tooling and round-trip tests.
//!
//! Supported gate subset: `h x y z s sdg sx rx ry rz cx cz swap rzz`
//! (everything [`crate::gate::Gate`] models; all are `qelib1.inc` gates).

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::param::Angle;
use std::fmt;

/// Errors from QASM emission or parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum QasmError {
    /// Export requires fully bound circuits (QASM 2.0 has no symbols).
    SymbolicAngle(usize),
    /// The parser met a line it does not understand.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::SymbolicAngle(i) => {
                write!(
                    f,
                    "gate {i} has a symbolic angle; bind the circuit before export"
                )
            }
            QasmError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for QasmError {}

/// Serializes a bound circuit as an OpenQASM 2.0 program with a final
/// measurement of every qubit.
///
/// # Errors
///
/// Returns [`QasmError::SymbolicAngle`] if any angle is unbound.
///
/// # Examples
///
/// ```
/// use qcircuit::{CircuitBuilder, qasm};
///
/// let mut b = CircuitBuilder::new(2);
/// b.h(0).cx(0, 1);
/// let text = qasm::to_qasm(&b.build())?;
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// # Ok::<(), qcircuit::qasm::QasmError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{n}];\n"));
    out.push_str(&format!("creg c[{n}];\n"));
    for (i, g) in circuit.gates().iter().enumerate() {
        if let Some(a) = g.angle() {
            if a.is_symbolic() {
                return Err(QasmError::SymbolicAngle(i));
            }
        }
        let qs = g.qubits();
        match (g.angle(), qs.len()) {
            (None, 1) => out.push_str(&format!("{} q[{}];\n", g.name(), qs[0])),
            (None, 2) => out.push_str(&format!("{} q[{}],q[{}];\n", g.name(), qs[0], qs[1])),
            (Some(a), 1) => out.push_str(&format!(
                "{}({}) q[{}];\n",
                g.name(),
                fmt_angle(a.value().expect("checked bound")),
                qs[0]
            )),
            (Some(a), 2) => out.push_str(&format!(
                "{}({}) q[{}],q[{}];\n",
                g.name(),
                fmt_angle(a.value().expect("checked bound")),
                qs[0],
                qs[1]
            )),
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
    }
    for q in 0..n {
        out.push_str(&format!("measure q[{q}] -> c[{q}];\n"));
    }
    Ok(out)
}

fn fmt_angle(a: f64) -> String {
    // 17 significant digits round-trip f64 exactly.
    format!("{a:.17}")
}

/// Parses the subset of OpenQASM 2.0 emitted by [`to_qasm`] (plus
/// whitespace/comment tolerance). Measurements and barriers are accepted
/// and ignored; the register width comes from the `qreg` declaration.
///
/// # Errors
///
/// Returns [`QasmError::Parse`] on unsupported or malformed input.
pub fn from_qasm(text: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: &str| QasmError::Parse {
            line: lineno + 1,
            message: message.to_string(),
        };
        if line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("qreg") {
            let n = parse_reg_size(rest).ok_or_else(|| err("malformed qreg"))?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        if line.starts_with("creg") || line.starts_with("measure") || line.starts_with("barrier") {
            continue;
        }
        let c = circuit.as_mut().ok_or_else(|| err("gate before qreg"))?;
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| err("missing semicolon"))?;
        let (head, operands) = stmt
            .split_once(' ')
            .ok_or_else(|| err("missing operands"))?;
        let (name, angle) = match head.split_once('(') {
            Some((n, rest)) => {
                let inner = rest
                    .strip_suffix(')')
                    .ok_or_else(|| err("unclosed angle"))?;
                let v: f64 = parse_angle(inner).ok_or_else(|| err("bad angle"))?;
                (n.trim(), Some(v))
            }
            None => (head.trim(), None),
        };
        let qubits: Vec<usize> = operands
            .split(',')
            .map(|t| parse_qubit(t.trim()))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| err("bad qubit operand"))?;
        let gate = build_gate(name, angle, &qubits).ok_or_else(|| err("unsupported gate"))?;
        c.push(gate)
            .map_err(|e| err(&format!("invalid gate: {e}")))?;
    }
    circuit.ok_or(QasmError::Parse {
        line: 0,
        message: "no qreg declaration found".to_string(),
    })
}

fn parse_reg_size(rest: &str) -> Option<usize> {
    // e.g. ` q[4];`
    let inner = rest.trim().strip_suffix(';')?.trim();
    let open = inner.find('[')?;
    let close = inner.find(']')?;
    inner[open + 1..close].parse().ok()
}

fn parse_qubit(token: &str) -> Option<usize> {
    let open = token.find('[')?;
    let close = token.find(']')?;
    token[open + 1..close].parse().ok()
}

fn parse_angle(token: &str) -> Option<f64> {
    let t = token.trim();
    // Accept plain floats plus the common `pi`-based spellings Qiskit
    // emits.
    if let Ok(v) = t.parse::<f64>() {
        return Some(v);
    }
    let pi = std::f64::consts::PI;
    match t {
        "pi" => Some(pi),
        "-pi" => Some(-pi),
        "pi/2" => Some(pi / 2.0),
        "-pi/2" => Some(-pi / 2.0),
        "pi/4" => Some(pi / 4.0),
        "-pi/4" => Some(-pi / 4.0),
        _ => {
            // `<float>*pi` or `<float>*pi/<int>`
            let t = t.replace(' ', "");
            if let Some(rest) = t.strip_suffix("*pi") {
                return rest.parse::<f64>().ok().map(|v| v * pi);
            }
            None
        }
    }
}

fn build_gate(name: &str, angle: Option<f64>, qubits: &[usize]) -> Option<Gate> {
    let fixed = angle.map(Angle::Fixed);
    match (name, qubits, fixed) {
        ("h", [q], None) => Some(Gate::H(*q)),
        ("x", [q], None) => Some(Gate::X(*q)),
        ("y", [q], None) => Some(Gate::Y(*q)),
        ("z", [q], None) => Some(Gate::Z(*q)),
        ("s", [q], None) => Some(Gate::S(*q)),
        ("sdg", [q], None) => Some(Gate::Sdg(*q)),
        ("sx", [q], None) => Some(Gate::Sx(*q)),
        ("rx", [q], Some(a)) => Some(Gate::Rx(*q, a)),
        ("ry", [q], Some(a)) => Some(Gate::Ry(*q, a)),
        ("rz", [q], Some(a)) => Some(Gate::Rz(*q, a)),
        ("cx" | "CX", [a, b], None) => Some(Gate::Cx(*a, *b)),
        ("cz", [a, b], None) => Some(Gate::Cz(*a, *b)),
        ("swap", [a, b], None) => Some(Gate::Swap(*a, *b)),
        ("rzz", [a, b], Some(t)) => Some(Gate::Rzz(*a, *b, t)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn paper_circuit() -> Circuit {
        // Bound Fig. 8 ansatz.
        let mut b = CircuitBuilder::new(4);
        for q in 0..4 {
            b.ry(q, 0.1 + q as f64 * 0.2);
        }
        for q in 0..4 {
            b.rz(q, -0.3 + q as f64 * 0.1);
        }
        for q in 0..3 {
            b.cx(q, q + 1);
        }
        b.rzz(0, 3, 0.7).swap(1, 2).sx(0).sdg(3);
        b.build()
    }

    #[test]
    fn export_contains_prologue_and_measurements() {
        let text = to_qasm(&paper_circuit()).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(text.contains("qreg q[4];"));
        assert!(text.contains("creg c[4];"));
        for q in 0..4 {
            assert!(text.contains(&format!("measure q[{q}] -> c[{q}];")));
        }
    }

    #[test]
    fn symbolic_circuits_are_rejected() {
        let mut b = CircuitBuilder::new(1);
        b.ry_sym(0, 0);
        assert_eq!(to_qasm(&b.build()), Err(QasmError::SymbolicAngle(0)));
    }

    #[test]
    fn roundtrip_preserves_unitary() {
        let original = paper_circuit();
        let text = to_qasm(&original).unwrap();
        let parsed = from_qasm(&text).unwrap();
        assert_eq!(parsed.num_qubits(), 4);
        assert_eq!(parsed.len(), original.len());
        let u0 = original.unitary(&[]).unwrap();
        let u1 = parsed.unitary(&[]).unwrap();
        assert!(u1.approx_eq_up_to_phase(&u0, 1e-10));
    }

    #[test]
    fn parses_qiskit_style_pi_angles() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\n\
                    rz(pi/2) q[0];\nrx(-pi/4) q[0];\nry(0.5*pi) q[0];\nmeasure q[0] -> c[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 3);
        let angles: Vec<f64> = c
            .gates()
            .iter()
            .map(|g| g.angle().unwrap().value().unwrap())
            .collect();
        let pi = std::f64::consts::PI;
        assert!((angles[0] - pi / 2.0).abs() < 1e-12);
        assert!((angles[1] + pi / 4.0).abs() < 1e-12);
        assert!((angles[2] - pi / 2.0).abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text =
            "// a comment\nOPENQASM 2.0;\n\nqreg q[2]; // register\nh q[0];\ncx q[0],q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n";
        match from_qasm(text) {
            Err(QasmError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(
            from_qasm("h q[0];\n").is_err(),
            "gate before qreg must fail"
        );
    }

    #[test]
    fn out_of_range_qubit_rejected() {
        let text = "OPENQASM 2.0;\nqreg q[2];\nh q[5];\n";
        assert!(matches!(
            from_qasm(text),
            Err(QasmError::Parse { line: 3, .. })
        ));
    }
}
