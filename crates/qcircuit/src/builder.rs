//! Fluent circuit construction.
//!
//! [`CircuitBuilder`] trades the `Result` per push of
//! [`crate::circuit::Circuit`] for panics on malformed gates, which is the
//! right ergonomics for the statically known ansatz shapes in `vqa` and
//! the examples.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::param::Angle;

/// A non-consuming builder over [`Circuit`].
///
/// # Panics
///
/// Every gate method panics immediately on out-of-range or duplicate
/// operands; the builder is meant for statically shaped circuits.
///
/// # Examples
///
/// ```
/// use qcircuit::CircuitBuilder;
///
/// // Fig. 10 of the paper: one QAOA round over a 4-cycle, 2 parameters.
/// let mut b = CircuitBuilder::new(4);
/// for q in 0..4 {
///     b.h(q);
/// }
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     b.rzz_sym(u, v, 0); // beta
/// }
/// for q in 0..4 {
///     b.rx_sym(q, 1); // alpha
/// }
/// let circuit = b.build();
/// assert_eq!(circuit.num_params(), 2);
/// assert_eq!(circuit.g2_count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Starts an empty builder over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        CircuitBuilder {
            circuit: Circuit::new(n_qubits),
        }
    }

    fn add(&mut self, g: Gate) -> &mut Self {
        self.circuit
            .push(g)
            .unwrap_or_else(|e| panic!("builder: {e}"));
        self
    }

    /// Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.add(Gate::H(q))
    }

    /// Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.add(Gate::X(q))
    }

    /// Pauli Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.add(Gate::Y(q))
    }

    /// Pauli Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.add(Gate::Z(q))
    }

    /// S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.add(Gate::S(q))
    }

    /// S-dagger gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.add(Gate::Sdg(q))
    }

    /// Square-root-of-X gate.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.add(Gate::Sx(q))
    }

    /// Fixed-angle RX.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.add(Gate::Rx(q, Angle::Fixed(theta)))
    }

    /// Symbolic RX bound to parameter `p`.
    pub fn rx_sym(&mut self, q: usize, p: usize) -> &mut Self {
        self.add(Gate::Rx(q, Angle::sym(p)))
    }

    /// Fixed-angle RY.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.add(Gate::Ry(q, Angle::Fixed(theta)))
    }

    /// Symbolic RY bound to parameter `p`.
    pub fn ry_sym(&mut self, q: usize, p: usize) -> &mut Self {
        self.add(Gate::Ry(q, Angle::sym(p)))
    }

    /// Fixed-angle RZ.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.add(Gate::Rz(q, Angle::Fixed(theta)))
    }

    /// Symbolic RZ bound to parameter `p`.
    pub fn rz_sym(&mut self, q: usize, p: usize) -> &mut Self {
        self.add(Gate::Rz(q, Angle::sym(p)))
    }

    /// CNOT with explicit `(control, target)`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.add(Gate::Cx(control, target))
    }

    /// Controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.add(Gate::Cz(a, b))
    }

    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.add(Gate::Swap(a, b))
    }

    /// Fixed-angle RZZ.
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.add(Gate::Rzz(a, b, Angle::Fixed(theta)))
    }

    /// Symbolic RZZ bound to parameter `p`.
    pub fn rzz_sym(&mut self, a: usize, b: usize, p: usize) -> &mut Self {
        self.add(Gate::Rzz(a, b, Angle::sym(p)))
    }

    /// Finishes and returns the circuit.
    pub fn build(&self) -> Circuit {
        self.circuit.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaining_builds_in_order() {
        let mut b = CircuitBuilder::new(2);
        b.h(0).cx(0, 1).ry_sym(1, 0);
        let c = b.build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.gates()[0], Gate::H(0));
        assert_eq!(c.num_params(), 1);
    }

    #[test]
    #[should_panic(expected = "builder")]
    fn builder_panics_on_bad_qubit() {
        CircuitBuilder::new(1).cx(0, 1);
    }

    #[test]
    fn builder_is_reusable_after_build() {
        let mut b = CircuitBuilder::new(1);
        b.h(0);
        let one = b.build();
        b.x(0);
        let two = b.build();
        assert_eq!(one.len(), 1);
        assert_eq!(two.len(), 2);
    }
}
