//! The quantum circuit IR.
//!
//! A [`Circuit`] is an ordered gate list over `n` qubits with symbolic
//! parameters. It carries the structural metrics the paper's analytic
//! model (Eq. 2) consumes — single/two-qubit gate counts `G1`/`G2`,
//! measurement count `M` and *critical depth* `CD` — and can execute
//! directly on the ideal state-vector simulator.

use crate::gate::Gate;
use crate::param::{Angle, ParamId};
use qsim::StateVector;
use std::fmt;

/// Errors raised by circuit construction and execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit `>= n_qubits`.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit width.
        n_qubits: usize,
    },
    /// A two-qubit gate used the same qubit twice.
    DuplicateOperand(usize),
    /// Execution or binding found an unbound symbolic angle.
    UnboundParameter(ParamId),
    /// A parameter vector had the wrong length.
    ParameterCountMismatch {
        /// Parameters expected by the circuit.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for a {n_qubits}-qubit circuit"
                )
            }
            CircuitError::DuplicateOperand(q) => {
                write!(f, "two-qubit gate uses qubit {q} twice")
            }
            CircuitError::UnboundParameter(p) => write!(f, "unbound parameter {p}"),
            CircuitError::ParameterCountMismatch { expected, got } => {
                write!(f, "expected {expected} parameters, got {got}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// An ordered list of gates over a fixed-width qubit register.
///
/// All qubits are measured at the end of the circuit (the workloads in the
/// paper measure every qubit), so the measurement count `M` equals the
/// width.
///
/// # Examples
///
/// ```
/// use qcircuit::{Circuit, Gate, Angle};
///
/// // The paper's GHZ calibration probe (Section IV) on 3 qubits.
/// let mut c = Circuit::new(3);
/// c.push(Gate::H(0))?;
/// c.push(Gate::Cx(0, 1))?;
/// c.push(Gate::Cx(1, 2))?;
/// let sv = c.run_statevector(&[])?;
/// assert!((sv.probability_of(0) - 0.5).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
    num_params: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits`.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            gates: Vec::new(),
            num_params: 0,
        }
    }

    /// Appends a gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::DuplicateOperand`] on malformed operands.
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        let qs = gate.qubits();
        for &q in &qs {
            if q >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
        }
        if qs.len() == 2 && qs[0] == qs[1] {
            return Err(CircuitError::DuplicateOperand(qs[0]));
        }
        if let Some(p) = gate.angle().and_then(Angle::param) {
            self.num_params = self.num_params.max(p.index() + 1);
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends every gate of an iterator.
    ///
    /// # Errors
    ///
    /// Fails fast on the first malformed gate.
    pub fn extend<I: IntoIterator<Item = Gate>>(&mut self, gates: I) -> Result<(), CircuitError> {
        for g in gates {
            self.push(g)?;
        }
        Ok(())
    }

    /// Circuit width (and measurement count `M`).
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of distinct symbolic parameters referenced
    /// (`max ParamId + 1`).
    #[inline]
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Borrows the gate list in program order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of *physical* single-qubit operations — the paper's `G1`.
    /// Virtual RZ frame changes are excluded.
    pub fn g1_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !g.is_two_qubit() && !g.is_virtual())
            .count()
    }

    /// Number of two-qubit operations — the paper's `G2`.
    pub fn g2_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Measurement count `M`: all qubits are measured once.
    pub fn measurement_count(&self) -> usize {
        self.n_qubits
    }

    /// Standard circuit depth: the longest chain of gates over any qubit
    /// timeline, counting every non-virtual gate as one layer.
    pub fn depth(&self) -> usize {
        self.depth_with(|_| 1)
    }

    /// The paper's *critical depth* `CD`: the longest weighted path through
    /// the qubit timelines where two-qubit gates weigh 1, physical
    /// single-qubit gates weigh 1 and virtual gates weigh 0.
    pub fn critical_depth(&self) -> usize {
        self.depth_with(|g| if g.is_virtual() { 0 } else { 1 })
    }

    fn depth_with<F: Fn(&Gate) -> usize>(&self, weight: F) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        for g in &self.gates {
            let w = weight(g);
            let qs = g.qubits();
            let start = qs.iter().map(|&q| frontier[q]).max().unwrap_or(0);
            for q in qs {
                frontier[q] = start + w;
            }
        }
        frontier.into_iter().max().unwrap_or(0)
    }

    /// The ordered set of parameter ids actually used by the circuit.
    pub fn parameter_ids(&self) -> Vec<ParamId> {
        let mut ids: Vec<ParamId> = self
            .gates
            .iter()
            .filter_map(|g| g.angle().and_then(Angle::param))
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Positions (gate indices) where parameter `p` occurs. The
    /// parameter-shift rule shifts each occurrence separately.
    pub fn occurrences_of(&self, p: ParamId) -> Vec<usize> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.angle().and_then(Angle::param) == Some(p))
            .map(|(i, _)| i)
            .collect()
    }

    /// Produces a fully bound copy with every symbolic angle resolved.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterCountMismatch`] if `params` is
    /// shorter than [`Circuit::num_params`].
    pub fn bind(&self, params: &[f64]) -> Result<Circuit, CircuitError> {
        if params.len() < self.num_params {
            return Err(CircuitError::ParameterCountMismatch {
                expected: self.num_params,
                got: params.len(),
            });
        }
        let gates = self
            .gates
            .iter()
            .map(|g| match g.angle() {
                Some(a) if a.is_symbolic() => g.with_angle(Angle::Fixed(a.resolve(params))),
                _ => *g,
            })
            .collect();
        Ok(Circuit {
            n_qubits: self.n_qubits,
            gates,
            num_params: 0,
        })
    }

    /// Produces a copy with the occurrence at gate index `gate_idx` shifted
    /// by `delta` radians (all other angles bound from `params`). This is
    /// the building block of the parameter-shift rule.
    ///
    /// # Errors
    ///
    /// Propagates binding errors; returns `UnboundParameter` semantics via
    /// `ParameterCountMismatch` if `params` is too short.
    ///
    /// # Panics
    ///
    /// Panics if `gate_idx` does not point at a parameterized gate.
    pub fn bind_with_shift(
        &self,
        params: &[f64],
        gate_idx: usize,
        delta: f64,
    ) -> Result<Circuit, CircuitError> {
        let mut bound = self.bind(params)?;
        let g = bound.gates[gate_idx];
        let a = g
            .angle()
            .unwrap_or_else(|| panic!("gate {gate_idx} is not parameterized"));
        let v = a.value().expect("bound circuit must have fixed angles");
        bound.gates[gate_idx] = g.with_angle(Angle::Fixed(v + delta));
        Ok(bound)
    }

    /// Runs the circuit on the ideal state-vector simulator.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterCountMismatch`] if `params` does
    /// not cover the symbolic angles.
    pub fn run_statevector(&self, params: &[f64]) -> Result<StateVector, CircuitError> {
        if params.len() < self.num_params {
            return Err(CircuitError::ParameterCountMismatch {
                expected: self.num_params,
                got: params.len(),
            });
        }
        let mut sv = StateVector::new(self.n_qubits);
        for g in &self.gates {
            let m = g.matrix(params);
            match g.qubits()[..] {
                [q] => sv.apply_1q(&m, q),
                [a, b] => sv.apply_2q(&m, a, b),
                _ => unreachable!("gates are 1- or 2-qubit"),
            }
        }
        Ok(sv)
    }

    /// Dense unitary of the whole circuit (small circuits only — used by
    /// equivalence tests).
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::run_statevector`].
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 10`.
    pub fn unitary(&self, params: &[f64]) -> Result<qsim::CMatrix, CircuitError> {
        assert!(
            self.n_qubits <= 10,
            "unitary extraction capped at 10 qubits"
        );
        if params.len() < self.num_params {
            return Err(CircuitError::ParameterCountMismatch {
                expected: self.num_params,
                got: params.len(),
            });
        }
        let dim = 1usize << self.n_qubits;
        let mut u = qsim::CMatrix::zeros(dim, dim);
        for col in 0..dim {
            // Evolve each basis state through the circuit.
            let mut amps = vec![qsim::C64::ZERO; dim];
            amps[col] = qsim::C64::ONE;
            let mut sv = StateVector::from_amplitudes(amps).expect("valid basis state");
            for g in &self.gates {
                let m = g.matrix(params);
                match g.qubits()[..] {
                    [q] => sv.apply_1q(&m, q),
                    [a, b] => sv.apply_2q(&m, a, b),
                    _ => unreachable!(),
                }
            }
            for (row, amp) in sv.amplitudes().iter().enumerate() {
                u[(row, col)] = *amp;
            }
        }
        Ok(u)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit[{} qubits, {} gates, {} params]",
            self.n_qubits,
            self.gates.len(),
            self.num_params
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::Cx(0, 1)).unwrap();
        c
    }

    #[test]
    fn push_validates_operands() {
        let mut c = Circuit::new(2);
        assert_eq!(
            c.push(Gate::H(5)),
            Err(CircuitError::QubitOutOfRange {
                qubit: 5,
                n_qubits: 2
            })
        );
        assert_eq!(
            c.push(Gate::Cx(1, 1)),
            Err(CircuitError::DuplicateOperand(1))
        );
        assert!(c.push(Gate::Cx(0, 1)).is_ok());
    }

    #[test]
    fn num_params_tracks_max_id() {
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, Angle::sym(3))).unwrap();
        assert_eq!(c.num_params(), 4);
        c.push(Gate::Rz(0, Angle::sym(1))).unwrap();
        assert_eq!(c.num_params(), 4);
        assert_eq!(c.parameter_ids(), vec![ParamId(1), ParamId(3)]);
    }

    #[test]
    fn gate_counts_exclude_virtual_rz() {
        let mut c = Circuit::new(2);
        c.push(Gate::Sx(0)).unwrap();
        c.push(Gate::Rz(0, Angle::Fixed(0.3))).unwrap();
        c.push(Gate::X(1)).unwrap();
        c.push(Gate::Cx(0, 1)).unwrap();
        assert_eq!(c.g1_count(), 2);
        assert_eq!(c.g2_count(), 1);
        assert_eq!(c.measurement_count(), 2);
    }

    #[test]
    fn depth_and_critical_depth() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0)).unwrap(); // layer 1 on q0
        c.push(Gate::Rz(0, Angle::Fixed(0.1))).unwrap(); // virtual
        c.push(Gate::Cx(0, 1)).unwrap(); // layer 2 on q0,q1
        c.push(Gate::Cx(1, 2)).unwrap(); // layer 3 on q1,q2
        c.push(Gate::H(2)).unwrap(); // layer 4 on q2
                                     // depth counts the RZ layer; critical depth skips virtual gates.
        assert_eq!(c.depth(), 5);
        assert_eq!(c.critical_depth(), 4);
        // A pure-RZ circuit has critical depth 0.
        let mut v = Circuit::new(1);
        v.push(Gate::Rz(0, Angle::Fixed(1.0))).unwrap();
        assert_eq!(v.critical_depth(), 0);
        assert_eq!(v.depth(), 1);
    }

    #[test]
    fn bind_resolves_all_symbols() {
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, Angle::sym(0))).unwrap();
        c.push(Gate::Rz(0, Angle::sym(1))).unwrap();
        let b = c.bind(&[0.5, 0.7]).unwrap();
        assert_eq!(b.num_params(), 0);
        assert_eq!(b.gates()[0].angle(), Some(Angle::Fixed(0.5)));
        assert_eq!(b.gates()[1].angle(), Some(Angle::Fixed(0.7)));
        assert!(matches!(
            c.bind(&[0.5]),
            Err(CircuitError::ParameterCountMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn bind_with_shift_moves_one_occurrence() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rzz(0, 1, Angle::sym(0))).unwrap();
        c.push(Gate::Rzz(0, 1, Angle::sym(0))).unwrap();
        let occ = c.occurrences_of(ParamId(0));
        assert_eq!(occ, vec![0, 1]);
        let shifted = c.bind_with_shift(&[1.0], 1, PI / 2.0).unwrap();
        assert_eq!(shifted.gates()[0].angle(), Some(Angle::Fixed(1.0)));
        assert_eq!(
            shifted.gates()[1].angle(),
            Some(Angle::Fixed(1.0 + PI / 2.0))
        );
    }

    #[test]
    fn run_statevector_bell() {
        let sv = bell().run_statevector(&[]).unwrap();
        assert!((sv.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((sv.probability_of(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitary_matches_known_gate() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0)).unwrap();
        c.push(Gate::H(0)).unwrap();
        let u = c.unitary(&[]).unwrap();
        assert!(u.approx_eq(&qsim::CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn unitary_of_parameterized_circuit() {
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, Angle::sym(0))).unwrap();
        let u = c.unitary(&[0.42]).unwrap();
        assert!(u.approx_eq(&qsim::gates::ry(0.42), 1e-12));
    }

    #[test]
    fn display_lists_gates() {
        let s = bell().to_string();
        assert!(s.contains("h [0]"));
        assert!(s.contains("cx [0, 1]"));
    }
}
