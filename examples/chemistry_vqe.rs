//! Extension workloads beyond the paper's evaluation: VQE on the H2
//! molecule and the transverse-field Ising chain, run through the same
//! EQC pipeline. Demonstrates that the framework is problem-agnostic —
//! any `VqaProblem` trains on any ensemble.
//!
//! Run with: `cargo run --release --example chemistry_vqe`

use eqc::prelude::*;
use vqa::problem::VqeProblem as Vqe;

fn train(
    problem: &dyn VqaProblem,
    label: &str,
    learning_rate: f64,
    epochs: usize,
) -> Result<(), EqcError> {
    let report = Ensemble::builder()
        .devices(["manila", "bogota", "lagos"])
        .device_seed(70)
        .config(
            EqcConfig::paper_vqe()
                .with_epochs(epochs)
                .with_shots(2048)
                .with_learning_rate(learning_rate)
                .with_weights(WeightBounds::new(0.5, 1.5)?),
        )
        .build()?
        .train(problem)?;
    println!(
        "{label}: converged {:.4} vs exact ground {:.4} ({:.2}% off), {:.1} epochs/h",
        report.converged_loss(8),
        report.reference_minimum,
        report.converged_error_pct(8),
        report.epochs_per_hour()
    );
    Ok(())
}

fn main() -> Result<(), EqcError> {
    println!("== Extension VQE workloads on a weighted 3-device ensemble ==\n");

    // H2 molecule (O'Malley 2-qubit reduction).
    let h2 = Vqe::h2();
    println!(
        "H2: {} Pauli terms over {} qubits, exact ground {:.4}",
        h2.hamiltonian().num_terms(),
        vqa::VqaProblem::num_qubits(&h2),
        h2.reference_minimum()
    );
    // The H2 landscape is shallow around the start: a larger step and
    // budget are needed (see the extensions section of EXPERIMENTS.md).
    train(&h2, "H2 molecule   ", 0.3, 100)?;

    // Transverse-field Ising chain at criticality (g = J).
    let tfim = Vqe::new(
        "vqe-tfim-4q",
        vqa::hamiltonians::transverse_field_ising(4, 1.0, 1.0),
        vqa::ansatz::hardware_efficient_layers(4, 2),
    );
    println!(
        "\nTFIM: {} Pauli terms, {} parameters, exact ground {:.4}",
        tfim.hamiltonian().num_terms(),
        vqa::VqaProblem::num_params(&tfim),
        tfim.reference_minimum()
    );
    train(&tfim, "TFIM chain    ", 0.1, 60)?;
    Ok(())
}
