//! Explore how one circuit lands on every Table I device: transpiled
//! G1/G2/CD metrics (the paper's Fig. 3 effect) and the resulting Eq. 2
//! quality score, fresh vs 20 hours after calibration.
//!
//! Run with: `cargo run --release --example device_explorer`

use eqc::prelude::*;
use eqc_core::p_correct;
use std::error::Error;
use transpile::LayoutStrategy;

fn main() -> Result<(), Box<dyn Error>> {
    // The Fig. 8 VQE ansatz with bound parameters.
    let circuit = vqa::ansatz::hardware_efficient(4).bind(&[0.3; 16])?;

    println!(
        "{:<12} {:>5} {:>4} {:>4} {:>4} {:>6} {:>10} {:>10}",
        "device", "qubit", "G1", "G2", "CD", "swaps", "P_fresh", "P_20h"
    );
    for spec in catalog::catalog() {
        let topology = spec.topology();
        let options = TranspileOptions {
            layout: LayoutStrategy::Greedy,
            ..Default::default()
        };
        let t = transpile(&circuit, &topology, &options)?;
        let backend = spec.backend(7);
        let fresh = backend.reported_calibration(SimTime::ZERO);
        let drifted = backend.actual_calibration(SimTime::from_hours(20.0));
        println!(
            "{:<12} {:>5} {:>4} {:>4} {:>4} {:>6} {:>10.4} {:>10.4}",
            spec.name,
            spec.qubits,
            t.metrics.g1,
            t.metrics.g2,
            t.metrics.critical_depth,
            t.metrics.swaps_inserted,
            p_correct(&t.metrics, &fresh),
            p_correct(&t.metrics, &drifted),
        );
    }
    println!(
        "\nBetter-connected devices route with fewer SWAPs (lower G2), which\n\
         raises Eq. 2's P_correct; stale calibrations degrade every device."
    );
    Ok(())
}
