//! Policy stacks: the same fleet trained under different master-node
//! policies — scheduling, gradient weighting, and drift-aware client
//! eviction — without touching the master loop.
//!
//! Run with: `cargo run --release --example policy_stacks`

use eqc::prelude::*;
// The shared flaky-device fixture: reported calibration swinging
// wildly between 1.8-second recalibration cycles — the workload drift
// eviction exists for.
use eqc_bench::flaky_backend;
use std::error::Error;

fn builder() -> Result<EnsembleBuilder, EqcError> {
    Ok(Ensemble::builder()
        .device("belem")
        .device("manila")
        .backend(flaky_backend(42))
        .device_seed(7)
        .config(
            EqcConfig::paper_qaoa()
                .with_epochs(10)
                .with_shots(256)
                .with_weights(WeightBounds::new(0.5, 1.5)?),
        ))
}

fn main() -> Result<(), Box<dyn Error>> {
    let problem = QaoaProblem::maxcut_ring4();

    // --- 1. The paper's stack (the default) ----------------------------
    // Cyclic first-free scheduling, Eq. 2/4 fidelity weighting, no
    // eviction: exactly Algorithm 1.
    let default = builder()?.build()?.train(&problem)?;
    println!(
        "default stack ({}/{}/{}):", // cyclic/fidelity/always-healthy
        default.policy.scheduler, default.policy.weighting, default.policy.health
    );
    println!("{default}");

    // --- 2. Contested weighting: equi-ensemble -------------------------
    // arXiv:2509.17982 argues uniform weights beat fidelity weighting.
    let equi = builder()?
        .weighting(EquiEnsemble)
        .build()?
        .train(&problem)?;
    println!(
        "equi-ensemble: final loss {:.4} (fidelity-weighted {:.4})\n",
        equi.final_loss, default.final_loss
    );

    // --- 3. Drift-aware eviction ---------------------------------------
    // Bench the flaky device when its reported calibration degrades
    // below 60% of its own baseline; re-admit after a recalibration
    // restores 85%. Its schedule share reroutes to the healthy fleet.
    let guarded = builder()?
        .scheduler(LeastLoaded)
        .health(DriftEviction::default())
        .build()?
        .train(&problem)?;
    println!(
        "with {} + {}: {} evictions, {} readmissions",
        guarded.policy.scheduler,
        guarded.policy.health,
        guarded.policy.evictions,
        guarded.policy.readmissions
    );
    for ev in &guarded.policy.eviction_log {
        println!(
            "  t={:.4} h  client {} {:?}",
            ev.virtual_hours, ev.client, ev.change
        );
    }
    println!("{guarded}");

    // Determinism survives policies: same stack, same report.
    let replay = builder()?
        .scheduler(LeastLoaded)
        .health(DriftEviction::default())
        .build()?
        .train(&problem)?;
    assert_eq!(guarded, replay, "policy-driven runs stay reproducible");
    println!("replay byte-identical: ok");
    Ok(())
}
