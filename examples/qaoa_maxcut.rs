//! The paper's QAOA workload: MaxCut on the 4-node ring (Eq. 5-7, Fig.
//! 10), comparing unweighted and weighted EQC ensembles — a scaled-down
//! Fig. 12. Also demonstrates a p=2 extension beyond the paper and
//! verifies the learned cut against brute force.
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use eqc::prelude::*;

const DEVICES: [&str; 7] = [
    "toronto", "santiago", "quito", "lima", "bogota", "manila", "belem",
];

fn train(
    problem: &QaoaProblem,
    weights: Option<WeightBounds>,
    label: &str,
) -> Result<TrainingReport, EqcError> {
    let mut config = EqcConfig::paper_qaoa().with_epochs(30).with_shots(2048);
    if let Some(w) = weights {
        config = config.with_weights(w);
    }
    let mut report = Ensemble::builder()
        .devices(DEVICES)
        .device_seed(20)
        .config(config)
        .build()?
        .train(problem)?;
    report.trainer = label.to_string();
    Ok(report)
}

fn main() -> Result<(), EqcError> {
    let problem = QaoaProblem::maxcut_ring4();
    let (best_cut, best_mask) = problem.graph().max_cut_brute_force();
    println!(
        "MaxCut on the 4-ring: optimum {best_cut} (assignment {best_mask:04b}), \
         p=1 reachable cost -0.75"
    );

    let unweighted = train(&problem, None, "eqc-unweighted")?;
    let weighted = train(
        &problem,
        Some(WeightBounds::new(0.5, 1.5)?),
        "eqc-weighted[0.5,1.5]",
    )?;
    println!("\n{unweighted}");
    println!("{weighted}");
    println!(
        "final normalized cost: unweighted {:.4} vs weighted {:.4}",
        unweighted.converged_loss(5),
        weighted.converged_loss(5)
    );

    // Extension: two QAOA rounds push past the p=1 barrier on the ideal
    // simulator.
    let p2 = QaoaProblem::maxcut("qaoa-ring4-p2", Graph::ring(4), 2);
    let ideal = Ensemble::builder()
        .ideal_device()
        .config(EqcConfig::paper_qaoa().with_epochs(60).with_shots(4096))
        .build()?
        .train_with(&SequentialExecutor::new(), &p2)?;
    println!(
        "\np=2 ideal training reaches {:.4} (p=1 limit -0.75, true optimum -1.0)",
        ideal.converged_loss(10)
    );
    Ok(())
}
