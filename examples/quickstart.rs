//! Quickstart: build a circuit, run it on a simulated NISQ device, and
//! train a small VQA across an ensemble through the `Ensemble` builder
//! and the default deterministic executor.
//!
//! Run with: `cargo run --release --example quickstart`

use eqc::prelude::*;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- 1. Ideal circuit simulation -----------------------------------
    let mut b = CircuitBuilder::new(2);
    b.h(0).cx(0, 1);
    let bell = b.build();
    println!("{}", qcircuit::diagram::render(&bell));
    let sv = bell.run_statevector(&[])?;
    println!("Bell state probabilities: {:?}", sv.probabilities());
    println!(
        "\nOpenQASM 2.0 export:\n{}",
        qcircuit::qasm::to_qasm(&bell)?
    );

    // --- 2. The same circuit on a simulated IBMQ backend ---------------
    let mut backend = catalog::by_name("bogota")
        .ok_or_else(|| EqcError::UnknownDevice("bogota".into()))?
        .backend(42);
    let job = backend.execute(&bell, &[0, 1], 4096, SimTime::ZERO);
    println!(
        "bogota measured {} shots in {:.1} virtual seconds: {}",
        job.counts.total(),
        job.completed - job.submitted,
        job.counts
    );

    // --- 3. Train QAOA MaxCut on a 3-device ensemble -------------------
    let problem = QaoaProblem::maxcut_ring4();
    let report = Ensemble::builder()
        .device("belem")
        .device("manila")
        .device("bogota")
        .config(EqcConfig::paper_qaoa().with_epochs(20).with_shots(2048))
        .build()?
        .train(&problem)?;
    println!("{report}");
    println!(
        "normalized MaxCut cost converged to {:.4} (p=1 optimum is -0.75)",
        report.converged_loss(5)
    );
    Ok(())
}
