//! The paper's VQE workload: the 4-qubit Heisenberg model (Eq. 3) under
//! the Fig. 8 hardware-efficient ansatz, trained three ways through the
//! same `Ensemble` API — the ideal simulator, a single device, and an
//! EQC ensemble with the adaptive weighting system.
//!
//! A scaled-down version of the Fig. 6 / Fig. 9 experiments (fewer epochs
//! and shots so it finishes in seconds); the full harness lives in
//! `crates/bench/src/bin/fig6.rs`.
//!
//! Run with: `cargo run --release --example vqe_heisenberg`

use eqc::prelude::*;

fn main() -> Result<(), EqcError> {
    let problem = VqeProblem::heisenberg_4q();
    println!(
        "Heisenberg 4q: {} Pauli terms, {} measurement groups, exact ground energy {:.4}",
        problem.hamiltonian().num_terms(),
        problem.templates().len(),
        problem.reference_minimum()
    );

    let config = EqcConfig::paper_vqe().with_epochs(25).with_shots(1024);
    let sequential = SequentialExecutor::new();

    // Ideal baseline.
    let ideal = Ensemble::builder()
        .ideal_device()
        .config(config)
        .build()?
        .train_with(&sequential, &problem)?;
    println!("\n{ideal}");

    // Single-device baseline on the noisiest machine of Table I.
    let single = Ensemble::builder()
        .device("x2")
        .device_seed(1)
        .config(config)
        .build()?
        .train_with(&sequential, &problem)?;
    println!("{single}");

    // EQC over five devices, weighted 0.5-1.5 (the paper's default band).
    let eqc = Ensemble::builder()
        .devices(["lima", "x2", "belem", "manila", "bogota"])
        .device_seed(10)
        .config(config.with_weights(WeightBounds::new(0.5, 1.5)?))
        .build()?
        .train(&problem)?;
    println!("{eqc}");

    println!(
        "speedup over single x2: {:.1}x | error: eqc {:.2}% vs x2 {:.2}%",
        eqc.epochs_per_hour() / single.epochs_per_hour(),
        eqc.converged_error_pct(5),
        single.converged_error_pct(5),
    );
    Ok(())
}
