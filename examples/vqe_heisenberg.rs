//! The paper's VQE workload: the 4-qubit Heisenberg model (Eq. 3) under
//! the Fig. 8 hardware-efficient ansatz, trained three ways — on the
//! ideal simulator, on a single device, and on an EQC ensemble with the
//! adaptive weighting system.
//!
//! A scaled-down version of the Fig. 6 / Fig. 9 experiments (fewer epochs
//! and shots so it finishes in seconds); the full harness lives in
//! `crates/bench/src/bin/fig6.rs`.
//!
//! Run with: `cargo run --release --example vqe_heisenberg`

use eqc::prelude::*;

fn main() {
    let problem = VqeProblem::heisenberg_4q();
    println!(
        "Heisenberg 4q: {} Pauli terms, {} measurement groups, exact ground energy {:.4}",
        problem.hamiltonian().num_terms(),
        problem.templates().len(),
        problem.reference_minimum()
    );

    let config = EqcConfig::paper_vqe().with_epochs(25).with_shots(1024);

    // Ideal baseline.
    let ideal = train_ideal(&problem, config);
    println!("\n{ideal}");

    // Single-device baseline on the noisiest machine of Table I.
    let x2 = catalog::by_name("x2").expect("catalog device").backend(1);
    let single = SingleDeviceTrainer::new(config)
        .train(&problem, ClientNode::new(0, x2, &problem).expect("fits"));
    println!("{single}");

    // EQC over five devices, weighted 0.5-1.5 (the paper's default band).
    let names = ["lima", "x2", "belem", "manila", "bogota"];
    let clients: Vec<ClientNode> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let be = catalog::by_name(n).expect("catalog device").backend(10 + i as u64);
            ClientNode::new(i, be, &problem).expect("fits")
        })
        .collect();
    let eqc = EqcTrainer::new(config.with_weights(WeightBounds::new(0.5, 1.5)))
        .train(&problem, clients);
    println!("{eqc}");

    println!(
        "speedup over single x2: {:.1}x | error: eqc {:.2}% vs x2 {:.2}%",
        eqc.epochs_per_hour() / single.epochs_per_hour(),
        eqc.converged_error_pct(5),
        single.converged_error_pct(5),
    );
}
