//! The paper's third VQA family: a quantum neural network trained with
//! data-point-level parallelism (Section III-A). Each gradient task
//! differentiates one parameter on one data point; the master averages
//! contributions across the ensemble asynchronously.
//!
//! Run with: `cargo run --release --example qnn_classifier`

use eqc::prelude::*;

fn main() -> Result<(), EqcError> {
    let problem = QnnProblem::synthetic(8, 13);
    println!(
        "QNN: {} data points, {} parameters, {} tasks per epoch",
        problem.num_data_points(),
        vqa::VqaProblem::num_params(&problem),
        vqa::VqaProblem::tasks(&problem).len()
    );

    let theta0 = vqa::VqaProblem::initial_point(&problem, 3);
    println!(
        "before training: loss {:.4}, accuracy {:.0}%",
        vqa::VqaProblem::ideal_loss(&problem, &theta0),
        problem.accuracy(&theta0) * 100.0
    );

    let report = Ensemble::builder()
        .devices(["belem", "manila", "bogota", "quito"])
        .device_seed(30)
        .config(
            EqcConfig::paper_qaoa()
                .with_epochs(15)
                .with_shots(1024)
                .with_seed(3)
                .with_learning_rate(0.4),
        )
        .build()?
        .train(&problem)?;
    println!("\n{report}");
    println!(
        "after training: loss {:.4}, accuracy {:.0}%",
        report.final_loss,
        problem.accuracy(&report.final_params) * 100.0
    );
    Ok(())
}
