//! Always-on fleet service: streaming admission, per-tenant
//! retirement, and deadline/SLO arbitration.
//!
//! The batch `FleetRuntime` (see `multi_tenant`) drives one closed
//! tenant set and stops; a `FleetService` keeps the fleet clock alive
//! instead — tenants arrive on a seeded admission queue at virtual-time
//! offsets, retire individually the moment their last gather absorbs,
//! and the fleet idles deterministically over any gaps. An
//! `EarliestDeadlineFirst` arbiter reads each tenant's remaining work
//! and deadline slack; when some deadline is already hopeless, it
//! degrades to plain fair share instead of starving everyone else.
//!
//! Run with: `cargo run --release --example streaming_service`

use eqc::prelude::*;
use std::error::Error;

const DEVICES: [&str; 4] = ["belem", "manila", "bogota", "quito"];

fn service_builder() -> FleetBuilder {
    FleetRuntime::builder().devices(DEVICES).device_seed(7)
}

fn cfg(epochs: usize, seed: u64) -> EqcConfig {
    EqcConfig::paper_qaoa()
        .with_epochs(epochs)
        .with_shots(256)
        .with_seed(seed)
}

/// One service run: staggered admissions, one comfortable deadline, one
/// deadline that was never meetable.
fn serve(qaoa: &QaoaProblem, vqe: &VqeProblem) -> Result<ServiceOutcome, Box<dyn Error>> {
    let mut service = service_builder()
        .arbiter(EarliestDeadlineFirst)
        .service_with(ServiceConfig::default().with_max_pending(8))?;

    // t = 0: a production tenant with a generous SLO.
    let prod = service.admit(
        qaoa,
        TenantConfig::new(cfg(4, 7)).deadline(3000.0).label("prod"),
    )?;
    // t = 0.2 h: a tenant whose deadline is infeasible from the start —
    // EDF will notice and fall back to fair share rather than throttle
    // the others for a lost cause.
    let doomed = service.admit_at(
        qaoa,
        TenantConfig::new(cfg(4, 11))
            .deadline(1.0e-4)
            .label("doomed"),
        0.2,
    )?;
    // t = 0.5 h: a best-effort VQE tenant, no SLO.
    let chemist = service.admit_at(
        vqe,
        TenantConfig::new(EqcConfig::paper_vqe().with_epochs(1).with_shots(128))
            .label("vqe-besteffort"),
        0.5,
    )?;

    // One drain drives all three to retirement; reports become pollable
    // without closing the service...
    let retired = service.drain()?;
    assert_eq!(retired.len(), 3);
    println!(
        "after the first drain the fleet clock reads {:.2} virtual hours",
        service.now_h()
    );
    let prod_report = service.poll(prod).expect("prod retired").clone();

    // ...and the service stays open: a straggler arrives five virtual
    // hours later, crossing an idle gap the clock accounts explicitly.
    let late_h = service.now_h() + 5.0;
    let straggler = service.admit_at(qaoa, TenantConfig::new(cfg(2, 13)).label("late"), late_h)?;

    let outcome = service.close()?;
    assert_eq!(outcome.try_report(prod)?, &prod_report);
    assert_eq!(outcome.try_report(straggler)?.epochs, 2);
    assert!(outcome.record(doomed).expect("recorded").deadline_met == Some(false));
    assert!(outcome
        .record(chemist)
        .expect("recorded")
        .deadline_met
        .is_none());
    Ok(outcome)
}

fn main() -> Result<(), Box<dyn Error>> {
    let qaoa = QaoaProblem::maxcut_ring4();
    let vqe = VqeProblem::heisenberg_4q();

    let outcome = serve(&qaoa, &vqe)?;
    println!("{}", outcome.service);

    // The infeasible tenant's miss is visible in the telemetry; the
    // feasible SLO was met even with the doomed tenant contending.
    assert_eq!(outcome.service.admissions, 4);
    assert_eq!(outcome.service.retirements, 4);
    assert_eq!(outcome.service.deadline_hits, 1);
    assert_eq!(outcome.service.deadline_misses, 1);
    assert!(
        outcome.service.idle_virtual_hours >= 4.9,
        "the straggler's gap is accounted as idle time"
    );

    // Streaming runs replay byte for byte: same admissions, same
    // arrivals, same outcome — reports and telemetry alike.
    let replay = serve(&qaoa, &vqe)?;
    assert_eq!(
        format!("{outcome:?}"),
        format!("{replay:?}"),
        "the streaming service must be deterministic"
    );
    println!("replay oracle: two service runs are byte-identical");
    Ok(())
}
