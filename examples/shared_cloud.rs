//! Shared-queue cloud: two tenants contending for one physical fleet.
//!
//! The default fleet substrates give every tenant a byte-isolated copy
//! of each device's queue — co-tenants never lengthen each other's
//! waits. The *shared* substrate replaces that with one occupancy
//! ledger per physical device: every tenant's bookings land on the
//! same timeline, so a heavy co-tenant measurably delays a light one,
//! and a contention-aware scheduler can route around the pressure.
//!
//! Run with: `cargo run --release --example shared_cloud`

use eqc::prelude::*;
use std::error::Error;

const DEVICES: [&str; 8] = [
    "lima",
    "belem",
    "quito",
    "manila",
    "santiago",
    "bogota",
    "lagos",
    "casablanca",
];

fn fleet_builder() -> FleetBuilder {
    FleetRuntime::builder().devices(DEVICES).device_seed(7)
}

fn heavy_cfg() -> EqcConfig {
    EqcConfig::paper_qaoa().with_epochs(6).with_shots(256)
}

fn light_cfg() -> EqcConfig {
    EqcConfig::paper_qaoa()
        .with_epochs(2)
        .with_shots(256)
        .with_seed(11)
}

fn main() -> Result<(), Box<dyn Error>> {
    let problem = QaoaProblem::maxcut_ring4();

    // --- 1. Same two tenants, two substrates. On the byte-isolated
    //        substrate the light tenant's queue waits are whatever the
    //        cloud model alone dictates; on the shared substrate the
    //        heavy tenant's bookings push them out. ------------------
    let run_pair = |builder: FleetBuilder| -> Result<FleetOutcome, EqcError> {
        let mut fleet = builder.build()?;
        fleet.admit(&problem, TenantConfig::new(heavy_cfg()).label("qaoa-heavy"))?;
        fleet.admit(&problem, TenantConfig::new(light_cfg()).label("qaoa-light"))?;
        fleet.run()
    };
    let isolated = run_pair(fleet_builder())?;
    let shared = run_pair(fleet_builder().shared())?;

    let light_isolated = isolated.telemetry.tenants[1].queue_wait_hours;
    let light_shared = shared.telemetry.tenants[1].queue_wait_hours;
    println!("light tenant queue waits, isolated substrate: {light_isolated:.3} h");
    println!("light tenant queue waits, shared substrate:   {light_shared:.3} h");
    assert!(
        light_shared > light_isolated,
        "sharing one queue timeline must lengthen the light tenant's waits"
    );

    // The shared substrate is the only one that can report per-device
    // occupancy — there is no single queue to describe otherwise.
    assert!(isolated.telemetry.occupancy.is_empty());
    assert_eq!(shared.telemetry.occupancy.len(), DEVICES.len());
    println!("\n{}", shared.telemetry);

    // --- 2. Determinism: contention replays byte for byte. ----------
    // The hot-path counters are part of the compared outcome, so the
    // incremental snapshot cache and the cross-tenant noise cache must
    // behave identically on replay too.
    let replay = run_pair(fleet_builder().shared())?;
    assert_eq!(shared, replay, "seeded shared-fleet runs replay exactly");
    println!("replay: byte-identical outcome under contention");
    println!(
        "hot path: snapshot_rebuilds={} snapshot_reuses={} \
         shared_noise_builds={} shared_noise_hits={}\n",
        shared.telemetry.snapshot_rebuilds,
        shared.telemetry.snapshot_reuses,
        shared.telemetry.shared_noise_builds,
        shared.telemetry.shared_noise_hits,
    );
    assert!(
        shared.telemetry.shared_noise_builds > 0,
        "co-tenants on one device must build its noise model at least once"
    );
    assert!(
        shared.telemetry.shared_noise_hits > 0,
        "co-tenants on one device should reuse each other's noise models"
    );

    // --- 3. A contention-aware light tenant routes around the heavy
    //        tenant's booked devices instead of queueing behind them. -
    let wait_with = |policies: PolicyConfig| -> Result<f64, EqcError> {
        let mut fleet = fleet_builder().arbiter(FairShare).shared().build()?;
        fleet.admit(&problem, TenantConfig::new(heavy_cfg()))?;
        fleet.admit(&problem, TenantConfig::new(light_cfg()).policies(policies))?;
        Ok(fleet.run()?.telemetry.tenants[1].queue_wait_hours)
    };
    let fifo = wait_with(PolicyConfig::default())?;
    let aware = wait_with(PolicyConfig::default().with_scheduler(ContentionAware::default()))?;
    println!("light tenant waits, cyclic dispatch:           {fifo:.3} h");
    println!("light tenant waits, contention-aware dispatch: {aware:.3} h");
    assert!(
        aware < fifo,
        "contention-aware dispatch should shorten the light tenant's waits"
    );

    Ok(())
}
