//! Engine parallelism: the same training run under the serial engines
//! and under a worker team, byte-identical by construction.
//!
//! `SimParallelism` is the one knob: `Serial` (the default) runs every
//! density pass and trajectory on the session thread;
//! `Workers(n)` fans density row-blocks and independent trajectories
//! over a persistent worker team. Results never depend on the lane
//! count — the worker team partitions work deterministically, so a
//! parallel run is a drop-in replacement wherever a report has been
//! pinned byte-for-byte. Shift-pair folding (on by default) is
//! orthogonal: each forward/backward gradient pair evolves its shared
//! tape prefix once, and the session's `EngineTelemetry` counts the
//! folds.
//!
//! Run with: `cargo run --release --example parallel_engine`

use eqc::prelude::*;
use std::error::Error;

fn train(par: SimParallelism) -> Result<(TrainingReport, EngineTelemetry), Box<dyn Error>> {
    let problem = QaoaProblem::maxcut_ring4();
    let ensemble = Ensemble::builder()
        .device("belem")
        .device("manila")
        .device("bogota")
        .config(
            EqcConfig::paper_qaoa()
                .with_epochs(12)
                .with_shots(1024)
                .with_sim_parallelism(par),
        )
        .build()?;
    let mut session = ensemble.session(&problem)?;
    let report = DiscreteEventExecutor::new().run(&mut session)?;
    let telemetry = session.engine_telemetry();
    Ok((report, telemetry))
}

fn main() -> Result<(), Box<dyn Error>> {
    let lanes = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));

    let (serial_report, serial_telemetry) = train(SimParallelism::Serial)?;
    println!("serial engines:   {serial_telemetry}");

    let (parallel_report, parallel_telemetry) = train(SimParallelism::Workers(lanes))?;
    println!("worker-team ({lanes}): {parallel_telemetry}");

    assert_eq!(
        serial_report, parallel_report,
        "worker-team training must replay the serial report byte for byte"
    );
    assert_eq!(
        serial_telemetry.folded_pairs,
        parallel_telemetry.folded_pairs
    );
    assert!(
        serial_telemetry.folded_pairs > 0,
        "shift-rule gradients fold forward/backward pairs"
    );

    println!("\nreports are byte-identical; {parallel_report}");
    println!(
        "normalized MaxCut cost converged to {:.4}",
        parallel_report.converged_loss(5)
    );
    Ok(())
}
