//! Multi-tenant fleet: several concurrent training sessions sharing
//! one device pool, with the arbiter deciding who gets capacity.
//!
//! A standalone `Ensemble` owns its devices for the whole run; the
//! `FleetRuntime` inverts that — the fleet owns the devices, sessions
//! are tenants that borrow capacity, each with its own problem,
//! configuration and policy stack.
//!
//! Run with: `cargo run --release --example multi_tenant`

use eqc::prelude::*;
use std::error::Error;

const DEVICES: [&str; 4] = ["belem", "manila", "bogota", "quito"];

fn fleet_builder() -> FleetBuilder {
    FleetRuntime::builder().devices(DEVICES).device_seed(7)
}

fn cfg(epochs: usize, seed: u64) -> EqcConfig {
    EqcConfig::paper_qaoa()
        .with_epochs(epochs)
        .with_shots(256)
        .with_seed(seed)
}

fn main() -> Result<(), Box<dyn Error>> {
    let qaoa = QaoaProblem::maxcut_ring4();
    let vqe = VqeProblem::heisenberg_4q();

    // --- 1. Fair-share: a production tenant at 3x the weight of a
    //        background experiment, plus a VQE tenant on its own
    //        policy stack — all on the same four devices. ------------
    let mut fleet = fleet_builder().arbiter(FairShare).build()?;
    let prod = fleet.admit(
        &qaoa,
        TenantConfig::new(cfg(6, 7)).weight(3.0).label("qaoa-prod"),
    )?;
    let background = fleet.admit(
        &qaoa,
        TenantConfig::new(cfg(6, 11)).label("qaoa-background"),
    )?;
    let chemist = fleet.admit(
        &vqe,
        TenantConfig::new(EqcConfig::paper_vqe().with_epochs(1).with_shots(128))
            .policies(PolicyConfig::default().with_weighting(EquiEnsemble))
            .label("vqe-equi"),
    )?;
    let outcome = fleet.run()?;
    println!("{}", outcome.telemetry);
    for id in [prod, background, chemist] {
        println!("{}", outcome.report(id));
    }
    assert!(
        outcome.tenant(prod).epochs_per_hour >= outcome.tenant(background).epochs_per_hour,
        "3x the fair-share weight should not train slower"
    );
    assert_eq!(outcome.report(chemist).policy.weighting, "equi-ensemble");

    // --- 2. Determinism: the same fleet run replays byte for byte. ---
    let mut replay = fleet_builder().arbiter(FairShare).build()?;
    replay.admit(
        &qaoa,
        TenantConfig::new(cfg(6, 7)).weight(3.0).label("qaoa-prod"),
    )?;
    replay.admit(
        &qaoa,
        TenantConfig::new(cfg(6, 11)).label("qaoa-background"),
    )?;
    replay.admit(
        &vqe,
        TenantConfig::new(EqcConfig::paper_vqe().with_epochs(1).with_shots(128))
            .policies(PolicyConfig::default().with_weighting(EquiEnsemble))
            .label("vqe-equi"),
    )?;
    assert_eq!(outcome, replay.run()?, "seeded fleet runs replay exactly");
    println!("replay: byte-identical outcome\n");

    // --- 3. Isolation oracle: with sharing disabled (Unshared), a
    //        tenant trains exactly as it would standalone, co-tenants
    //        or not. --------------------------------------------------
    let standalone = Ensemble::builder()
        .devices(DEVICES)
        .device_seed(7)
        .config(cfg(6, 7))
        .build()?
        .train(&qaoa)?;
    let mut unshared = fleet_builder().arbiter(Unshared).build()?;
    let solo = unshared.admit(&qaoa, TenantConfig::new(cfg(6, 7)))?;
    unshared.admit(&qaoa, TenantConfig::new(cfg(6, 11)))?;
    let iso = unshared.run()?;
    assert_eq!(
        format!("{standalone:?}"),
        format!("{:?}", iso.report(solo)),
        "unshared tenants are byte-identical to standalone sessions"
    );
    println!("unshared: tenant == standalone session (byte-identical)");

    Ok(())
}
