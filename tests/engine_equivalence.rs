//! The compiled-engine equivalence suite.
//!
//! The engine layer (compiled programs + allocation-free engines + the
//! per-cycle noise cache) claims **byte-identical** results to the
//! pre-engine path, which survives verbatim behind
//! `QpuBackend::with_legacy_execution` as the oracle. This suite holds
//! it to that claim at every level: raw counts per job (density and
//! trajectory engines, under drift, across recalibration boundaries),
//! and full `TrainingReport`s for VQE and QAOA ensembles — plus the
//! cache-discipline guarantees (noise models built once per calibration
//! cycle, templates compiled once per noise epoch).

use eqc::prelude::*;
use qcircuit::CircuitBuilder;
use qdevice::{catalog, DriftModel, QpuBackend, QueueModel, SimulatorKind};

fn vqe_circuit(n: usize) -> qcircuit::Circuit {
    let mut b = CircuitBuilder::new(n);
    for q in 0..n {
        b.ry(q, 0.3 + 0.2 * q as f64);
    }
    for q in 0..n - 1 {
        b.cx(q, q + 1);
    }
    for q in 0..n {
        b.rz(q, 0.1 * q as f64 - 0.4);
    }
    b.build()
}

/// A drifting, episodic backend recalibrating every 3 virtual minutes,
/// so even a short training run crosses several recalibration
/// boundaries (and the continuous drift forces a model re-degrade on
/// every job — the cache's hardest regime).
fn stress_backend(seed: u64) -> QpuBackend {
    let spec = catalog::by_name("belem").expect("catalog device");
    QpuBackend::new(
        &spec.name,
        spec.topology(),
        spec.calibration(),
        DriftModel::linear(0.08, 0.02)
            .with_episode(0.05, 0.12, 3.0)
            .expect("valid episode"),
        QueueModel::light(3.0),
        0.05, // recalibrate every 3 virtual minutes
        seed,
    )
    .with_downtime_hours(0.0)
}

#[test]
fn density_engine_is_byte_identical_to_reference_across_cycles() {
    let mut engine = stress_backend(11);
    let mut legacy = stress_backend(11).with_legacy_execution();
    let circuit = vqe_circuit(4);
    let active = [0, 1, 2, 3];
    let mut t = SimTime::ZERO;
    for job in 0..10 {
        let a = engine.execute(&circuit, &active, 2048, t);
        let b = legacy.execute(&circuit, &active, 2048, t);
        assert_eq!(a.counts, b.counts, "counts diverge at job {job}");
        assert_eq!(
            a.completed.as_secs().to_bits(),
            b.completed.as_secs().to_bits(),
            "timing diverges at job {job}"
        );
        // Jump ~1.7 virtual hours per job: crosses cycle boundaries and
        // the drift episode.
        t = a.completed + 6000.0;
    }
    assert!(
        engine.reported_calibration_builds() >= 3,
        "the walk should have crossed several recalibrations, saw {}",
        engine.reported_calibration_builds()
    );
}

#[test]
fn trajectory_engine_is_byte_identical_to_reference_across_cycles() {
    let mut engine = stress_backend(12).with_simulator(SimulatorKind::Trajectories(48));
    let mut legacy = stress_backend(12)
        .with_simulator(SimulatorKind::Trajectories(48))
        .with_legacy_execution();
    let circuit = vqe_circuit(4);
    let active = [0, 1, 2, 3];
    let mut t = SimTime::ZERO;
    for job in 0..6 {
        let a = engine.execute(&circuit, &active, 512, t);
        let b = legacy.execute(&circuit, &active, 512, t);
        assert_eq!(a.counts, b.counts, "counts diverge at job {job}");
        t = a.completed + 9000.0;
    }
}

fn fleet(legacy: bool, simulator: SimulatorKind) -> Ensemble {
    let mut builder = Ensemble::builder();
    for (i, name) in ["belem", "manila", "bogota"].iter().enumerate() {
        let spec = catalog::by_name(name).expect("catalog device");
        let mut backend = spec.backend(300 + i as u64).with_simulator(simulator);
        if legacy {
            backend = backend.with_legacy_execution();
        }
        builder = builder.backend(backend);
    }
    builder
        .config(EqcConfig::paper_qaoa().with_epochs(6).with_shots(512))
        .build()
        .expect("fleet builds")
}

#[test]
fn qaoa_training_report_identical_on_engine_and_legacy_paths() {
    let problem = QaoaProblem::maxcut_ring4();
    let fast = fleet(false, SimulatorKind::Density)
        .train(&problem)
        .expect("engine path trains");
    let slow = fleet(true, SimulatorKind::Density)
        .train(&problem)
        .expect("legacy path trains");
    assert_eq!(fast, slow, "structurally identical reports");
    assert_eq!(
        format!("{fast:?}"),
        format!("{slow:?}"),
        "byte-identical debug serialization"
    );
}

#[test]
fn trajectory_training_report_identical_on_engine_and_legacy_paths() {
    let problem = QaoaProblem::maxcut_ring4();
    let fast = fleet(false, SimulatorKind::Trajectories(24))
        .train(&problem)
        .expect("engine path trains");
    let slow = fleet(true, SimulatorKind::Trajectories(24))
        .train(&problem)
        .expect("legacy path trains");
    assert_eq!(fast, slow);
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
}

#[test]
fn vqe_training_report_identical_across_recalibration_boundary() {
    // Short calibration cycles + drift: the run crosses recalibrations,
    // so the per-cycle caches invalidate mid-training. The report must
    // still match the uncached path byte for byte.
    let problem = VqeProblem::heisenberg_4q();
    let mk = |legacy: bool| {
        let mut backend = stress_backend(77);
        if legacy {
            backend = backend.with_legacy_execution();
        }
        Ensemble::builder()
            .backend(backend)
            .config(EqcConfig::paper_vqe().with_epochs(3).with_shots(256))
            .build()
            .expect("builds")
            .train(&problem)
            .expect("trains")
    };
    let fast = mk(false);
    let slow = mk(true);
    assert_eq!(fast, slow);
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    assert!(fast.total_hours > 0.1, "run must span multiple cycles");
}

#[test]
fn noise_model_is_built_once_per_cycle_without_drift() {
    let spec = catalog::by_name("manila").expect("catalog device");
    let mut backend = QpuBackend::new(
        &spec.name,
        spec.topology(),
        spec.calibration(),
        DriftModel::none(),
        QueueModel::light(1.0),
        24.0,
        5,
    );
    let circuit = vqe_circuit(4);
    let active = [0, 1, 2, 3];
    let mut t = SimTime::ZERO;
    for _ in 0..8 {
        let r = backend.execute(&circuit, &active, 256, t);
        t = r.completed;
    }
    assert!(t.as_hours() < 24.0, "all jobs must fall in cycle 0");
    assert_eq!(
        backend.noise_model_builds(),
        1,
        "stable cycle + no drift => exactly one NoiseModel construction"
    );
    assert_eq!(backend.reported_calibration_builds(), 1);

    // Crossing into the next cycle invalidates exactly once.
    let r = backend.execute(&circuit, &active, 256, SimTime::from_hours(25.0));
    assert!(r.counts.total() == 256);
    assert_eq!(backend.noise_model_builds(), 2);
    assert_eq!(backend.reported_calibration_builds(), 2);
}

#[test]
fn client_compiles_templates_once_per_calibration_cycle() {
    let problem = VqeProblem::heisenberg_4q();
    let spec = catalog::by_name("bogota").expect("catalog device");
    let backend = QpuBackend::new(
        &spec.name,
        spec.topology(),
        spec.calibration(),
        DriftModel::none(),
        QueueModel::light(1.0),
        24.0,
        9,
    );
    let mut client = ClientNode::new(0, backend, &problem).expect("transpiles");
    let params = problem.initial_point(3);
    let task = vqa::GradientTask {
        param: qcircuit::ParamId(0),
        slice: vqa::TaskSlice::Full,
    };
    for _ in 0..5 {
        client.run_task(&problem, task, &params, 128, SimTime::ZERO);
    }
    let compiles_cycle0 = client.programs_compiled();
    assert!(
        compiles_cycle0 >= 1,
        "at least the slice's template compiles"
    );
    assert!(
        client.program_cache_hits() > 0,
        "repeat jobs in one cycle must hit the program cache"
    );
    // Same cycle, more work: no recompilation.
    client.run_task(&problem, task, &params, 128, SimTime::ZERO);
    assert_eq!(client.programs_compiled(), compiles_cycle0);
    // Next calibration cycle: exactly one recompile per touched template.
    client.run_task(&problem, task, &params, 128, SimTime::from_hours(30.0));
    assert!(client.programs_compiled() > compiles_cycle0);
}

#[test]
fn template_recompiles_when_moved_across_backends() {
    // Two backends with the *same* seed but different calibrations must
    // not share a noise epoch: a template dragged from one to the other
    // has to recompile instead of replaying the first device's
    // channels (the NoiseToken backend-identity guard).
    use qdevice::{CompiledTemplate, TemplateRun};
    let mk = |name: &str| {
        let spec = catalog::by_name(name).expect("catalog device");
        QpuBackend::new(
            &spec.name,
            spec.topology(),
            spec.calibration(),
            DriftModel::none(),
            QueueModel::light(1.0),
            24.0,
            5, // identical seed on purpose
        )
    };
    let mut belem = mk("belem");
    let mut manila = mk("manila");
    let mut template = CompiledTemplate::new(vqe_circuit(4), vec![0, 1, 2, 3]);
    let runs = [TemplateRun {
        template: 0,
        shift: None,
    }];
    belem.execute_templates(&mut [&mut template], &runs, &[], 64, SimTime::ZERO);
    assert_eq!(template.compiles(), 1);
    manila.execute_templates(&mut [&mut template], &runs, &[], 64, SimTime::ZERO);
    assert_eq!(
        template.compiles(),
        2,
        "a different backend in the same cycle must force a recompile"
    );
}

/// A parameterized template circuit: one `Ry(theta_q)` per qubit, a CX
/// chain, one `Rz(theta_{n+q})` per qubit — every rotation is a
/// shift-rule target.
fn sym_circuit(n: usize) -> qcircuit::Circuit {
    let mut b = CircuitBuilder::new(n);
    for q in 0..n {
        b.ry_sym(q, q);
    }
    for q in 0..n - 1 {
        b.cx(q, q + 1);
    }
    for q in 0..n {
        b.rz_sym(q, n + q);
    }
    b.build()
}

#[test]
fn shift_pair_folding_is_byte_identical_across_recompile() {
    // The folded path evolves a forward/backward shift pair's shared
    // tape prefix once. It must stay byte-identical to the unfolded
    // run-at-a-time path even while the drifting backend recompiles the
    // template across noise epochs mid-walk.
    use qdevice::{CompiledTemplate, TemplateRun};
    use std::f64::consts::FRAC_PI_2;
    let mut folded = stress_backend(33);
    let mut unfolded = stress_backend(33).without_shift_fold();
    let circuit = sym_circuit(4);
    // Gate layout: ry_sym at 0..4, cx at 4..7, rz_sym at 7..11.
    let runs = [
        TemplateRun {
            template: 0,
            shift: Some((1, FRAC_PI_2)),
        },
        TemplateRun {
            template: 0,
            shift: None,
        },
        TemplateRun {
            template: 0,
            shift: Some((1, -FRAC_PI_2)),
        },
        TemplateRun {
            template: 0,
            shift: Some((9, FRAC_PI_2)),
        },
        TemplateRun {
            template: 0,
            shift: Some((9, -FRAC_PI_2)),
        },
        TemplateRun {
            template: 0,
            shift: Some((0, FRAC_PI_2)), // unpaired: must fall back to a solo bind
        },
    ];
    let params: Vec<f64> = (0..8).map(|i| 0.2 + 0.15 * i as f64).collect();
    let mut template_a = CompiledTemplate::new(circuit.clone(), vec![0, 1, 2, 3]);
    let mut template_b = CompiledTemplate::new(circuit, vec![0, 1, 2, 3]);
    let mut t = SimTime::ZERO;
    for batch in 0..4 {
        let (ca, ra) = folded.execute_templates(&mut [&mut template_a], &runs, &params, 512, t);
        let (cb, rb) = unfolded.execute_templates(&mut [&mut template_b], &runs, &params, 512, t);
        assert_eq!(ca, cb, "per-run counts diverge at batch {batch}");
        assert_eq!(
            ra.completed.as_secs().to_bits(),
            rb.completed.as_secs().to_bits(),
            "timing diverges at batch {batch}"
        );
        // Jump past the 3-minute recalibration period between batches.
        t = ra.completed + 600.0;
    }
    assert!(
        template_a.compiles() >= 2,
        "the walk must straddle a noise-epoch recompile, saw {} compiles",
        template_a.compiles()
    );
    assert_eq!(template_a.compiles(), template_b.compiles());
    assert_eq!(
        folded.folded_pairs(),
        8,
        "two foldable pairs per batch over four batches"
    );
    assert_eq!(unfolded.folded_pairs(), 0);
}

/// A template with a *fixed* ansatz prefix (H layer + CX chain) ahead
/// of the first parameterized rotation — the shape the shared-prefix
/// cache exists for. `extra_rz` appends a second symbolic layer so two
/// such circuits share the prefix but diverge in the suffix.
fn prefixed_circuit(n: usize, first_param: usize, extra_rz: bool) -> qcircuit::Circuit {
    let mut b = CircuitBuilder::new(n);
    for q in 0..n {
        b.h(q);
    }
    for q in 0..n - 1 {
        b.cx(q, q + 1);
    }
    for q in 0..n {
        b.ry_sym(q, first_param + q);
    }
    if extra_rz {
        for q in 0..n {
            b.rz_sym(q, first_param + n + q);
        }
    }
    b.build()
}

#[test]
fn batched_group_fork_is_byte_identical_across_templates_and_recompile() {
    // The batched path binds each template's base once, forks every
    // shifted run N-way off one walk, and resumes shared prefixes from
    // the noise-epoch cache — across templates and across batches. It
    // must stay byte-identical to both the folded and the unfolded
    // paths while the drifting backend recompiles mid-walk (every
    // recompile starts a new noise epoch, which must invalidate the
    // prefix cache rather than leak stale states).
    use qdevice::{CompiledTemplate, TemplateRun};
    use std::f64::consts::FRAC_PI_2;
    let mut batched = stress_backend(47).with_batch_exec();
    let mut folded = stress_backend(47);
    let mut unfolded = stress_backend(47).without_shift_fold();
    // Two templates sharing an identical fixed prefix (H + CX chain):
    // the second template's batch group must *hit* the prefix state the
    // first one cached, within every noise epoch.
    let circuit_a = prefixed_circuit(4, 0, false);
    let circuit_b = prefixed_circuit(4, 0, true);
    // Gate layout: h at 0..4, cx at 4..7, ry_sym at 7..11 (rz_sym at
    // 11..15 in circuit_b only).
    let runs = [
        TemplateRun {
            template: 0,
            shift: Some((7, FRAC_PI_2)),
        },
        TemplateRun {
            template: 1,
            shift: Some((12, FRAC_PI_2)),
        },
        TemplateRun {
            template: 0,
            shift: None,
        },
        TemplateRun {
            template: 0,
            shift: Some((7, -FRAC_PI_2)),
        },
        TemplateRun {
            template: 1,
            shift: Some((12, -FRAC_PI_2)),
        },
        TemplateRun {
            template: 1,
            shift: None,
        },
        TemplateRun {
            template: 1,
            shift: Some((9, FRAC_PI_2)), // unpaired in the folded path
        },
    ];
    let params: Vec<f64> = (0..8).map(|i| 0.15 + 0.11 * i as f64).collect();
    let mut templates = [0, 1, 2].map(|_| {
        [
            CompiledTemplate::new(circuit_a.clone(), vec![0, 1, 2, 3]),
            CompiledTemplate::new(circuit_b.clone(), vec![0, 1, 2, 3]),
        ]
    });
    let [ta, tb, tc] = &mut templates;
    let mut t = SimTime::ZERO;
    for batch in 0..4 {
        let (a0, a1) = ta.split_at_mut(1);
        let (ca, ra) =
            batched.execute_templates(&mut [&mut a0[0], &mut a1[0]], &runs, &params, 512, t);
        let (b0, b1) = tb.split_at_mut(1);
        let (cb, rb) =
            folded.execute_templates(&mut [&mut b0[0], &mut b1[0]], &runs, &params, 512, t);
        let (c0, c1) = tc.split_at_mut(1);
        let (cc, rc) =
            unfolded.execute_templates(&mut [&mut c0[0], &mut c1[0]], &runs, &params, 512, t);
        assert_eq!(ca, cb, "batched vs folded counts diverge at batch {batch}");
        assert_eq!(
            ca, cc,
            "batched vs unfolded counts diverge at batch {batch}"
        );
        assert_eq!(
            ra.completed.as_secs().to_bits(),
            rb.completed.as_secs().to_bits(),
            "batched vs folded timing diverges at batch {batch}"
        );
        assert_eq!(
            ra.completed.as_secs().to_bits(),
            rc.completed.as_secs().to_bits(),
            "batched vs unfolded timing diverges at batch {batch}"
        );
        t = ra.completed + 600.0;
    }
    assert!(
        ta[0].compiles() >= 2,
        "the walk must straddle a noise-epoch recompile, saw {} compiles",
        ta[0].compiles()
    );
    assert_eq!(ta[0].compiles(), tb[0].compiles());
    assert_eq!(ta[0].compiles(), tc[0].compiles());
    assert_eq!(
        batched.batched_jobs(),
        4 * runs.len() as u64,
        "every run of every batch goes through the batched path"
    );
    assert!(
        batched.prefix_hits() >= 4,
        "template B must hit template A's cached prefix in every batch, saw {}",
        batched.prefix_hits()
    );
    assert_eq!(folded.prefix_hits(), 0);
    assert_eq!(batched.folded_pairs(), 0, "group forks replace pairing");
}

fn parallel_fleet(par: SimParallelism, simulator: SimulatorKind) -> Ensemble {
    let mut builder = Ensemble::builder();
    for (i, name) in ["belem", "manila", "bogota"].iter().enumerate() {
        let spec = catalog::by_name(name).expect("catalog device");
        builder = builder.backend(spec.backend(300 + i as u64).with_simulator(simulator));
    }
    builder
        .config(
            EqcConfig::paper_qaoa()
                .with_epochs(6)
                .with_shots(512)
                .with_sim_parallelism(par),
        )
        .build()
        .expect("fleet builds")
}

#[test]
fn density_training_report_identical_under_worker_team() {
    let problem = QaoaProblem::maxcut_ring4();
    let fast = parallel_fleet(SimParallelism::Workers(4), SimulatorKind::Density)
        .train(&problem)
        .expect("parallel path trains");
    let slow = parallel_fleet(SimParallelism::Serial, SimulatorKind::Density)
        .train(&problem)
        .expect("serial path trains");
    assert_eq!(fast, slow, "structurally identical reports");
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
}

#[test]
fn trajectory_training_report_identical_under_worker_team() {
    let problem = QaoaProblem::maxcut_ring4();
    let fast = parallel_fleet(SimParallelism::Workers(3), SimulatorKind::Trajectories(24))
        .train(&problem)
        .expect("parallel path trains");
    let slow = parallel_fleet(SimParallelism::Serial, SimulatorKind::Trajectories(24))
        .train(&problem)
        .expect("serial path trains");
    assert_eq!(fast, slow);
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
}

#[test]
fn engine_telemetry_reports_lanes_and_folded_pairs() {
    let problem = QaoaProblem::maxcut_ring4();
    let ensemble = parallel_fleet(SimParallelism::Workers(3), SimulatorKind::Density);
    let mut session = ensemble.session(&problem).expect("session binds");
    let report = DiscreteEventExecutor::new()
        .run(&mut session)
        .expect("trains");
    assert!(report.epochs > 0);
    let telem = session.engine_telemetry();
    assert_eq!(telem.workers, 3, "lanes follow the SimParallelism knob");
    assert!(
        telem.folded_pairs > 0,
        "shift-rule gradient batches must fold forward/backward pairs"
    );
    assert!(telem.jobs > 0);
    assert_eq!(
        format!("{telem}"),
        format!(
            "{} engine lanes, {} folded pairs, {} jobs, 0 pipeline lanes, 0 batched jobs, 0 prefix hits",
            telem.workers, telem.folded_pairs, telem.jobs
        ),
        "worker-team sessions leave the pipeline counters at zero"
    );
}

#[test]
fn wrapper_executors_match_reference_functions() {
    // The public execute_density / execute_trajectories wrappers (used
    // by external callers and the figure harnesses) are thin shims over
    // the engine; they must reproduce the preserved reference
    // implementations byte for byte.
    use qdevice::noise_model::{execute_density, execute_trajectories, reference, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let circuit = vqe_circuit(4);
    let cal = qdevice::Calibration::uniform(4, 85.0, 65.0, 0.002, 0.015, 0.025);
    let noise = NoiseModel::from_calibration(&cal, &[0, 1, 2, 3]);

    let (a, da) = execute_density(&circuit, &noise, 30_000, &mut StdRng::seed_from_u64(21));
    let (b, db) =
        reference::execute_density(&circuit, &noise, 30_000, &mut StdRng::seed_from_u64(21));
    assert_eq!(a, b, "density wrapper must be byte-identical");
    assert_eq!(da.to_bits(), db.to_bits());

    let (a, da) = execute_trajectories(&circuit, &noise, 4096, 64, &mut StdRng::seed_from_u64(22));
    let (b, db) =
        reference::execute_trajectories(&circuit, &noise, 4096, 64, &mut StdRng::seed_from_u64(22));
    assert_eq!(a, b, "trajectory wrapper must be byte-identical");
    assert_eq!(da.to_bits(), db.to_bits());
}
