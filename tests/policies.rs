//! The policy layer end to end: the default stack is byte-identical to
//! the pre-policy master loop on every deterministic substrate, and
//! each non-default policy (EquiEnsemble, StalenessDecay, LeastLoaded,
//! DriftEviction) changes training in exactly the way it advertises.

use eqc::prelude::*;
// The flaky-device fixture (reported calibration swinging between
// 1.8-second recalibration cycles) is shared with the `fig_policies`
// harness and the `policy_stacks` example.
use eqc_bench::flaky_backend;

fn qaoa_ensemble(names: &[&str], epochs: usize) -> EnsembleBuilder {
    Ensemble::builder()
        .devices(names.iter().copied())
        .device_seed(7)
        .config(
            EqcConfig::paper_qaoa()
                .with_epochs(epochs)
                .with_shots(256)
                .with_weights(WeightBounds::new(0.5, 1.5).expect("valid band")),
        )
}

#[test]
fn explicit_default_stack_is_byte_identical_on_deterministic_executors() {
    // The refactor oracle: spelling out Cyclic + FidelityWeighted +
    // AlwaysHealthy must reproduce the implicit default — which carries
    // the pre-policy master loop's behavior — byte for byte, on every
    // substrate with a deterministic report.
    let problem = QaoaProblem::maxcut_ring4();
    let implicit = qaoa_ensemble(&["belem", "manila", "bogota"], 6)
        .build()
        .expect("builds");
    let explicit = qaoa_ensemble(&["belem", "manila", "bogota"], 6)
        .policies(PolicyConfig::default())
        .scheduler(Cyclic)
        .weighting(FidelityWeighted)
        .health(AlwaysHealthy)
        .build()
        .expect("builds");

    let executors: Vec<(&str, Box<dyn Executor>)> = vec![
        ("discrete-event", Box::new(DiscreteEventExecutor::new())),
        ("pooled-deterministic", Box::new(PooledExecutor::new())),
        ("sequential", Box::new(SequentialExecutor::new())),
    ];
    for (name, executor) in &executors {
        let a = implicit
            .train_with(executor.as_ref(), &problem)
            .expect("implicit trains");
        let b = explicit
            .train_with(executor.as_ref(), &problem)
            .expect("explicit trains");
        assert_eq!(a, b, "{name}: explicit default stack must be a no-op");
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{name}: byte-identical debug serialization"
        );
    }

    // The threaded substrate is nondeterministic by design; assert the
    // training work and policy telemetry instead of bytes.
    let a = implicit
        .train_with(&ThreadedExecutor::new(), &problem)
        .expect("implicit trains");
    let b = explicit
        .train_with(&ThreadedExecutor::new(), &problem)
        .expect("explicit trains");
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.updates_applied, b.updates_applied);
    assert_eq!(a.policy.scheduler, b.policy.scheduler);
}

#[test]
fn default_policy_telemetry_is_recorded() {
    let problem = QaoaProblem::maxcut_ring4();
    let report = qaoa_ensemble(&["belem", "manila"], 3)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_eq!(report.policy.scheduler, "cyclic");
    assert_eq!(report.policy.weighting, "fidelity");
    assert_eq!(report.policy.health, "always-healthy");
    assert_eq!(report.policy.evictions, 0);
    assert_eq!(report.policy.readmissions, 0);
    assert!(report.policy.eviction_log.is_empty());
    assert_eq!(report.policy.weight_provenance.len(), 2);
    for (i, p) in report.policy.weight_provenance.iter().enumerate() {
        assert_eq!(p.client, i);
        assert_eq!(p.policy, "fidelity");
        assert!(p.samples > 0, "client {i} absorbed no results");
        assert!(
            (0.5..=1.5).contains(&p.min_weight) && (0.5..=1.5).contains(&p.max_weight),
            "weights out of the configured band: [{}, {}]",
            p.min_weight,
            p.max_weight
        );
    }
}

#[test]
fn equi_ensemble_neutralizes_the_weight_band() {
    // Uniform weighting with a band configured must train exactly like
    // fidelity weighting with no band: both apply w = 1 everywhere.
    let problem = QaoaProblem::maxcut_ring4();
    let unweighted_cfg = EqcConfig::paper_qaoa().with_epochs(5).with_shots(256);
    let fidelity_no_band = Ensemble::builder()
        .devices(["belem", "x2", "bogota"])
        .device_seed(7)
        .config(unweighted_cfg)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    let equi_with_band = qaoa_ensemble(&["belem", "x2", "bogota"], 5)
        .weighting(EquiEnsemble)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");

    assert_eq!(equi_with_band.policy.weighting, "equi-ensemble");
    assert_eq!(equi_with_band.final_params, fidelity_no_band.final_params);
    assert_eq!(equi_with_band.update_log, fidelity_no_band.update_log);
    assert!(equi_with_band.weight_trace.is_empty());
    for c in &equi_with_band.clients {
        assert_eq!(c.mean_weight, 1.0, "{} not uniform", c.device);
    }
}

#[test]
fn staleness_decay_attenuates_delayed_updates() {
    let problem = QaoaProblem::maxcut_ring4();
    let decayed = qaoa_ensemble(&["belem", "manila", "bogota", "quito"], 8)
        .weighting(StalenessDecay::new(0.5).expect("valid decay"))
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_eq!(decayed.policy.weighting, "staleness-decay");
    assert_eq!(decayed.epochs, 8);
    // Four async clients over two parameters guarantee stale results,
    // and every stale result must have been attenuated below 1.
    assert!(decayed.max_staleness >= 1);
    let min_weight = decayed
        .policy
        .weight_provenance
        .iter()
        .map(|p| p.min_weight)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_weight < 1.0,
        "staleness decay never attenuated anything (min weight {min_weight})"
    );
    let max_weight = decayed
        .policy
        .weight_provenance
        .iter()
        .map(|p| p.max_weight)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max_weight <= 1.0,
        "decay can only attenuate, got {max_weight}"
    );

    // And it changes the trajectory relative to the default stack.
    let default = qaoa_ensemble(&["belem", "manila", "bogota", "quito"], 8)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_ne!(decayed.final_params, default.final_params);
}

#[test]
fn least_loaded_scheduler_is_deterministic_and_changes_the_assignment() {
    // One congested device in an otherwise quiet fleet: at prime time
    // the least-loaded scheduler hands the first task to a quiet device
    // instead of client 0, so the task-to-client mapping — and hence
    // the whole deterministic trajectory — shifts.
    let problem = QaoaProblem::maxcut_ring4();
    let build = |least_loaded: bool| {
        let spec = catalog::by_name("quito").expect("catalog");
        let congested = QpuBackend::new(
            "congested",
            spec.topology(),
            spec.calibration(),
            qdevice::DriftModel::none(),
            qdevice::QueueModel::congested(600.0, 0.2, 0.0),
            24.0,
            5,
        );
        let mut b = Ensemble::builder()
            .backend(congested)
            .device("belem")
            .device("manila")
            .config(EqcConfig::paper_qaoa().with_epochs(4).with_shots(128));
        if least_loaded {
            b = b.scheduler(LeastLoaded);
        }
        b.build().expect("builds")
    };
    let cyclic = build(false).train(&problem).expect("trains");
    let least = build(true).train(&problem).expect("trains");
    let least_again = build(true).train(&problem).expect("trains");
    assert_eq!(least, least_again, "least-loaded must stay deterministic");
    assert_eq!(least.policy.scheduler, "least-loaded");
    assert_ne!(
        cyclic.update_log, least.update_log,
        "scheduling policy must be observable in the trajectory"
    );
}

#[test]
fn composed_weighting_band_rescale_times_decay() {
    // The composed cell: weights must sit inside band * decay — never
    // above the fidelity band alone — and the trajectory must differ
    // from both parts on a fleet with staleness and quality spread.
    let problem = QaoaProblem::maxcut_ring4();
    let names = ["belem", "x2", "bogota", "quito"];
    let composed = qaoa_ensemble(&names, 8)
        .weighting(Composed(
            FidelityWeighted,
            StalenessDecay::new(0.5).expect("valid"),
        ))
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_eq!(composed.policy.weighting, "fidelity*staleness-decay");
    assert_eq!(composed.epochs, 8);
    for p in &composed.policy.weight_provenance {
        assert_eq!(p.policy, "fidelity*staleness-decay");
        assert!(
            p.max_weight <= 1.5 + 1e-12,
            "composition can only attenuate the band: {}",
            p.max_weight
        );
    }
    // Staleness existed, so some weight fell below the band floor the
    // pure fidelity policy could never leave.
    assert!(composed.max_staleness >= 1);
    let min_weight = composed
        .policy
        .weight_provenance
        .iter()
        .map(|p| p.min_weight)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_weight < 0.5,
        "decay should push below the band floor somewhere, got {min_weight}"
    );
    // The band trace still records the fidelity component, in band.
    assert!(!composed.weight_trace.is_empty());
    for sample in &composed.weight_trace {
        for &w in &sample.weights {
            assert!((0.5..=1.5).contains(&w), "trace weight {w} out of band");
        }
    }
    // And it is a genuinely new cell: different from both parts.
    let fidelity = qaoa_ensemble(&names, 8)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    let decay = qaoa_ensemble(&names, 8)
        .weighting(StalenessDecay::new(0.5).expect("valid"))
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_ne!(composed.final_params, fidelity.final_params);
    assert_ne!(composed.final_params, decay.final_params);
}

#[test]
fn lookahead_scheduler_routes_around_an_upcoming_peak() {
    // A device that is the cheapest queue *right now* but sits just
    // before a steep congestion ramp (short-period cycle, deep
    // amplitude): the instantaneous LeastLoaded primes it first, while
    // the lookahead variant — forecasting at now + expected job latency
    // — sees the 30-minute-ahead wait explode and primes the stable
    // devices first. Deterministically.
    let problem = QaoaProblem::maxcut_ring4();
    let horizon_s = 1800.0;
    let build = |lookahead: bool| {
        let spec = catalog::by_name("quito").expect("catalog");
        // Wait ~2 s at t=0 (cheapest in the fleet), ~117 s half an hour
        // later: a 2-hour congestion cycle crossing its trough now.
        let trap = QpuBackend::new(
            "trap",
            spec.topology(),
            spec.calibration(),
            qdevice::DriftModel::none(),
            qdevice::QueueModel {
                overhead_s: 1.0,
                mean_wait_s: 30.0,
                diurnal_amplitude: 3.0,
                phase_hours: 1.65,
                period_hours: 2.0,
                reset_time_us: 250.0,
            },
            24.0,
            5,
        );
        let mut b = Ensemble::builder()
            .backend(trap)
            .device("belem")
            .device("manila")
            .device_seed(7)
            .config(EqcConfig::paper_qaoa().with_epochs(4).with_shots(128));
        b = if lookahead {
            b.scheduler(LookaheadLeastLoaded::new(horizon_s).expect("valid horizon"))
        } else {
            b.scheduler(LeastLoaded)
        };
        b.build().expect("builds")
    };
    let instant = build(false).train(&problem).expect("trains");
    let ahead = build(true).train(&problem).expect("trains");
    let ahead_again = build(true).train(&problem).expect("trains");
    assert_eq!(ahead, ahead_again, "lookahead must stay deterministic");
    assert_eq!(ahead.policy.scheduler, "lookahead-least-loaded");
    assert_eq!(instant.policy.scheduler, "least-loaded");
    assert_ne!(
        instant.update_log, ahead.update_log,
        "the forecast must change the assignment"
    );
}

#[test]
fn drift_eviction_benches_and_readmits_the_flaky_device() {
    let problem = QaoaProblem::maxcut_ring4();
    let build = || {
        Ensemble::builder()
            .device("belem")
            .device("manila")
            .backend(flaky_backend(42))
            .device_seed(7)
            .config(EqcConfig::paper_qaoa().with_epochs(12).with_shots(128))
            .health(DriftEviction::default())
            .build()
            .expect("builds")
    };
    let report = build().train(&problem).expect("trains");
    assert_eq!(report.policy.health, "drift-eviction");
    assert_eq!(report.epochs, 12, "training must survive evictions");
    assert!(
        report.policy.evictions >= 1,
        "flaky device never evicted: {:?}",
        report.policy
    );
    assert!(
        report.policy.readmissions >= 1,
        "flaky device never recalibrated back in: {:?}",
        report.policy
    );
    // The log interleaves: a client must be evicted before it can
    // rejoin, and every event names the flaky client (id 2).
    let mut benched = false;
    for ev in &report.policy.eviction_log {
        assert_eq!(ev.client, 2, "only the flaky device should flap");
        match ev.change {
            MembershipChange::Evicted => {
                assert!(!benched, "double eviction without re-admission");
                benched = true;
            }
            MembershipChange::Readmitted => {
                assert!(benched, "re-admission without a prior eviction");
                benched = false;
            }
        }
    }
    // The evicted client's schedule share was rerouted, not dropped:
    // the full epoch budget completed and the healthy clients worked.
    assert_eq!(
        report.updates_applied,
        (12 * vqa::VqaProblem::num_params(&problem)) as u64
    );
    for c in &report.clients {
        assert!(c.tasks_completed > 0, "{} idle", c.device);
    }

    // The deterministic pool must replay the eviction decisions — and
    // therefore the whole report — byte for byte.
    let pooled = build()
        .train_with(&PooledExecutor::new().workers(2), &problem)
        .expect("pooled trains");
    let des = build().train(&problem).expect("DES trains");
    assert_eq!(
        format!("{des:?}"),
        format!("{pooled:?}"),
        "pool must replay evictions byte-identically"
    );

    // The threaded and sequential substrates honor eviction too.
    let threaded = build()
        .train_with(&ThreadedExecutor::new(), &problem)
        .expect("threaded trains");
    assert_eq!(threaded.epochs, 12);
    let sequential = build()
        .train_with(&SequentialExecutor::new(), &problem)
        .expect("sequential trains");
    assert_eq!(sequential.epochs, 12);
}

#[test]
fn drift_eviction_never_benches_the_last_active_client() {
    let problem = QaoaProblem::maxcut_ring4();
    let report = Ensemble::builder()
        .backend(flaky_backend(9))
        .config(EqcConfig::paper_qaoa().with_epochs(4).with_shots(128))
        .health(DriftEviction::default())
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_eq!(report.epochs, 4);
    assert_eq!(
        report.policy.evictions, 0,
        "a single-device ensemble can never evict"
    );
}

#[test]
fn policy_session_api_works_from_clients() {
    // The shim-level session constructor accepts an explicit stack too.
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(128);
    let clients: Vec<ClientNode> = ["belem", "manila"]
        .iter()
        .enumerate()
        .map(|(i, n)| {
            ClientNode::new(
                i,
                catalog::by_name(n).expect("catalog").backend(7 + i as u64),
                &problem,
            )
            .expect("transpiles")
        })
        .collect();
    let policies = PolicyConfig::default().with_weighting(EquiEnsemble);
    let mut session = EnsembleSession::from_clients_with_policies(&problem, cfg, policies, clients)
        .expect("builds");
    let report = DiscreteEventExecutor::new()
        .run(&mut session)
        .expect("trains");
    assert_eq!(report.policy.weighting, "equi-ensemble");
    assert_eq!(report.epochs, 2);
}
