//! Executor equivalence and determinism: the four substrates drive the
//! same master loop, so their reports must agree wherever the execution
//! order is immaterial — and the deterministic pooled substrate must
//! reproduce the discrete-event executor byte for byte at any fleet
//! width.

use eqc::prelude::*;
use std::collections::HashMap;

fn qaoa_ensemble(names: &[&str], epochs: usize) -> Ensemble {
    Ensemble::builder()
        .devices(names.iter().copied())
        .device_seed(7)
        .config(EqcConfig::paper_qaoa().with_epochs(epochs).with_shots(512))
        .build()
        .expect("catalog devices resolve")
}

#[test]
fn discrete_event_reports_are_byte_identical_per_seed() {
    let problem = QaoaProblem::maxcut_ring4();
    let ensemble = qaoa_ensemble(&["belem", "manila", "bogota"], 8);
    let a = ensemble.train(&problem).expect("trains");
    let b = ensemble.train(&problem).expect("trains");
    assert_eq!(a, b, "structurally identical");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "byte-identical debug serialization"
    );
}

/// Builds the qaoa fleet on an explicit simulation engine.
fn engine_ensemble(simulator: qdevice::SimulatorKind, epochs: usize) -> Ensemble {
    let mut builder = Ensemble::builder();
    for (i, name) in ["belem", "manila"].iter().enumerate() {
        let spec = qdevice::catalog::by_name(name).expect("catalog device");
        builder = builder.backend(spec.backend(7 + i as u64).with_simulator(simulator));
    }
    builder
        .config(EqcConfig::paper_qaoa().with_epochs(epochs).with_shots(256))
        .build()
        .expect("fleet builds")
}

#[test]
fn discrete_event_is_deterministic_on_both_engines() {
    // The determinism guarantee is engine-independent: the density
    // engine and the trajectory engine must each reproduce their full
    // report byte for byte under a fixed seed.
    let problem = QaoaProblem::maxcut_ring4();
    for simulator in [
        qdevice::SimulatorKind::Density,
        qdevice::SimulatorKind::Trajectories(24),
    ] {
        let ensemble = engine_ensemble(simulator, 4);
        let a = ensemble.train(&problem).expect("trains");
        let b = ensemble.train(&problem).expect("trains");
        assert_eq!(a, b, "{simulator:?} must replay identically");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn engines_agree_statistically_but_not_bitwise() {
    // Sanity check that the two engines are genuinely different
    // unravelings of the same physics: close in distribution, not equal
    // in bits.
    let problem = QaoaProblem::maxcut_ring4();
    let dens = engine_ensemble(qdevice::SimulatorKind::Density, 4)
        .train(&problem)
        .expect("trains");
    let traj = engine_ensemble(qdevice::SimulatorKind::Trajectories(64), 4)
        .train(&problem)
        .expect("trains");
    assert_ne!(dens.final_params, traj.final_params);
    assert!(
        (dens.final_loss - traj.final_loss).abs() < 0.5,
        "density {} vs trajectories {}",
        dens.final_loss,
        traj.final_loss
    );
}

/// An independent re-implementation of the pre-0.2
/// `SingleDeviceTrainer::train` loop (uncapped, unweighted): walk the
/// cyclic task list, chain each submission on the previous completion,
/// gather consecutive same-parameter slices locally, apply plain SGD,
/// record the ideal loss after every full cycle.
fn reference_single_device_sgd(
    problem: &dyn VqaProblem,
    mut client: ClientNode,
    cfg: EqcConfig,
) -> (Vec<f64>, Vec<(usize, f64, f64)>) {
    let mut theta = vqa::VqaProblem::initial_point(problem, cfg.seed);
    let tasks = vqa::VqaProblem::tasks(problem);
    let mut now = SimTime::ZERO;
    let mut history = Vec::new();
    for epoch in 1..=cfg.epochs {
        let mut idx = 0usize;
        while idx < tasks.len() {
            let param = tasks[idx].param;
            let mut grad = 0.0;
            while idx < tasks.len() && tasks[idx].param == param {
                let r = client.run_task(problem, tasks[idx], &theta, cfg.shots, now);
                now = r.completed;
                grad += r.gradient;
                idx += 1;
            }
            theta[param.index()] -= cfg.learning_rate * grad;
        }
        history.push((epoch, now.as_hours(), problem.ideal_loss(&theta)));
    }
    (theta, history)
}

#[test]
fn sequential_on_ideal_matches_reference_single_device_sgd() {
    // Compare the SequentialExecutor against an independent
    // re-implementation of the historical single-device trainer's loop,
    // on the same ideal backend stream — not against itself.
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe().with_epochs(4).with_shots(256);

    let client = ClientNode::new(
        0,
        ideal_backend(vqa::VqaProblem::num_qubits(&problem), cfg.seed ^ 0x5eed),
        &problem,
    )
    .expect("ideal fits");
    let (ref_params, ref_history) = reference_single_device_sgd(&problem, client, cfg);

    let new = Ensemble::builder()
        .backend(ideal_backend(
            vqa::VqaProblem::num_qubits(&problem),
            cfg.seed ^ 0x5eed,
        ))
        .config(cfg)
        .build()
        .expect("builds")
        .train_with(&SequentialExecutor::new(), &problem)
        .expect("trains");

    assert_eq!(new.final_params, ref_params, "identical final parameters");
    assert_eq!(new.trainer, "ideal");
    let new_history: Vec<(usize, f64, f64)> = new
        .history
        .iter()
        .map(|h| (h.epoch, h.virtual_hours, h.ideal_loss))
        .collect();
    assert_eq!(new_history, ref_history, "identical loss trajectory");
}

#[test]
fn threaded_applies_the_same_gradient_set_as_discrete_event() {
    // Thread scheduling permutes arrival order, but on a 2-client
    // ensemble both substrates must complete the same training work:
    // identical update counts, near-identical sets of (cycle, parameter)
    // applications, and full participation.
    let problem = QaoaProblem::maxcut_ring4();
    let epochs = 10;
    let ensemble = qaoa_ensemble(&["belem", "manila"], epochs);
    let params_per_cycle = vqa::VqaProblem::num_params(&problem);
    let n_clients = 2;

    let des = ensemble.train(&problem).expect("trains");
    let thr = ensemble
        .train_with(&ThreadedExecutor::new(), &problem)
        .expect("trains");

    // Both run the epoch budget to completion with the same number of
    // applied parameter updates.
    assert_eq!(des.epochs, epochs);
    assert_eq!(thr.epochs, epochs);
    assert_eq!(des.updates_applied, (epochs * params_per_cycle) as u64);
    assert_eq!(des.updates_applied, thr.updates_applied);

    // The multisets of applied (cycle, parameter) updates agree up to
    // the work in flight when the epoch budget was hit.
    let count = |log: &[(usize, usize)]| {
        let mut m: HashMap<(usize, usize), i64> = HashMap::new();
        for &k in log {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    };
    let (a, b) = (count(&des.update_log), count(&thr.update_log));
    let mut diff = 0i64;
    for key in a
        .keys()
        .chain(b.keys())
        .collect::<std::collections::HashSet<_>>()
    {
        diff += (a.get(key).copied().unwrap_or(0) - b.get(key).copied().unwrap_or(0)).abs();
    }
    assert!(
        diff <= 2 * n_clients as i64,
        "update sets diverge beyond in-flight slack: {diff}"
    );

    // Every parameter advanced once per epoch, give or take the boundary.
    for m in [&a, &b] {
        for p in 0..params_per_cycle {
            let n: i64 = m
                .iter()
                .filter(|((_, param), _)| *param == p)
                .map(|(_, c)| *c)
                .sum();
            assert!(
                (n - epochs as i64).abs() <= 1,
                "param {p} updated {n} times over {epochs} epochs"
            );
        }
    }

    // Both substrates keep the whole fleet busy.
    for r in [&des, &thr] {
        for c in &r.clients {
            assert!(
                c.tasks_completed > 0,
                "{} idle under {}",
                c.device,
                r.trainer
            );
        }
    }
}

#[test]
fn executors_are_interchangeable_behind_the_trait() {
    // The extension point: training code written against `dyn Executor`
    // works with every substrate.
    let problem = QaoaProblem::maxcut_ring4();
    let executors: Vec<Box<dyn Executor>> = vec![
        Box::new(DiscreteEventExecutor::new()),
        Box::new(ThreadedExecutor::new()),
        Box::new(PooledExecutor::new()),
        Box::new(PooledExecutor::new().deterministic(false)),
        Box::new(SequentialExecutor::new()),
    ];
    let ensemble = qaoa_ensemble(&["belem", "manila"], 3);
    for executor in &executors {
        let report = ensemble
            .train_with(executor.as_ref(), &problem)
            .expect("every substrate trains");
        assert_eq!(report.epochs, 3);
        assert_eq!(report.clients.len(), 2);
    }
}

#[test]
fn pooled_deterministic_is_byte_identical_to_discrete_event_on_the_figure_fleet() {
    // The fig-harness workload: the paper's 8-device QAOA fleet (queue
    // spreads from seconds to minutes, Casablanca's drift episode
    // included) with the weighting system on — the densest exercise of
    // the master loop. The pool must replay the DES report exactly,
    // byte for byte.
    let problem = QaoaProblem::maxcut_ring4();
    let names: Vec<String> = qdevice::catalog::qaoa_devices()
        .iter()
        .map(|d| d.name.clone())
        .collect();
    let ensemble = Ensemble::builder()
        .devices(names.iter().map(String::as_str))
        .device_seed(0xF1612)
        .config(
            EqcConfig::paper_qaoa()
                .with_epochs(6)
                .with_shots(512)
                .with_weights(WeightBounds::new(0.5, 1.5).expect("valid band")),
        )
        .build()
        .expect("fleet builds");

    let des = ensemble.train(&problem).expect("DES trains");
    for workers in [1usize, 4] {
        let pooled = ensemble
            .train_with(&PooledExecutor::new().workers(workers), &problem)
            .expect("pooled trains");
        assert_eq!(des, pooled, "structurally identical at {workers} workers");
        assert_eq!(
            format!("{des:?}"),
            format!("{pooled:?}"),
            "byte-identical debug serialization at {workers} workers"
        );
    }
}

#[test]
fn pooled_trains_a_256_client_fleet_with_a_bounded_worker_count() {
    // Where ThreadedExecutor would have spawned 256 OS threads, the pool
    // spawns at most `available_parallelism` workers — and still
    // produces the exact deterministic report.
    let base: Vec<qdevice::DeviceSpec> = ["belem", "manila", "bogota", "quito", "lima"]
        .iter()
        .map(|n| qdevice::catalog::by_name(n).expect("catalog device"))
        .collect();
    let n = 256;
    let ensemble = Ensemble::builder()
        .specs(qdevice::catalog::fleet(&base, n, 0xF1EE7))
        .device_seed(11)
        .config(EqcConfig::paper_qaoa().with_epochs(1).with_shots(32))
        .build()
        .expect("fleet builds");
    let problem = QaoaProblem::maxcut_ring4();

    let pooled_exec = PooledExecutor::new();
    let pooled = ensemble
        .train_with(&pooled_exec, &problem)
        .expect("pooled trains");
    let telemetry = pooled_exec.telemetry().expect("ran");
    let cap = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    assert!(
        telemetry.workers_spawned <= cap,
        "{} workers exceed the machine's parallelism {cap}",
        telemetry.workers_spawned
    );
    assert!(
        telemetry.workers_spawned < n,
        "pool must not scale threads with clients"
    );
    assert_eq!(pooled.clients.len(), n, "every fleet member reports");
    assert_eq!(pooled.epochs, 1);

    let des = ensemble.train(&problem).expect("DES trains");
    assert_eq!(
        format!("{des:?}"),
        format!("{pooled:?}"),
        "byte-identical at fleet scale"
    );
}

#[test]
fn pooled_arrival_mode_matches_threaded_update_set_semantics() {
    // Arrival order is scheduler-dependent, but the pool must complete
    // the same training work as the deterministic substrates: full epoch
    // budget, same number of applied updates, every client busy.
    let problem = QaoaProblem::maxcut_ring4();
    let epochs = 8;
    let ensemble = qaoa_ensemble(&["belem", "manila", "bogota"], epochs);
    let params_per_cycle = vqa::VqaProblem::num_params(&problem);

    let des = ensemble.train(&problem).expect("trains");
    let exec = PooledExecutor::new().deterministic(false).workers(2);
    let pooled = ensemble.train_with(&exec, &problem).expect("trains");

    assert_eq!(pooled.epochs, epochs);
    assert_eq!(pooled.trainer, "eqc-pooled[3]");
    assert_eq!(des.updates_applied, (epochs * params_per_cycle) as u64);
    assert_eq!(des.updates_applied, pooled.updates_applied);
    for c in &pooled.clients {
        assert!(c.tasks_completed > 0, "{} idle under the pool", c.device);
    }
}

#[test]
fn threaded_executor_returns_surviving_clients_on_error() {
    // Regression: the error path used to `?`-return before
    // `put_clients`, leaving the session permanently empty. Build a
    // 2-client session where one client was prepared for a *different*
    // problem (its worker thread panics binding too few parameters):
    // the run must error, and the surviving client must come back.
    let qaoa = QaoaProblem::maxcut_ring4();
    let vqe = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(64);

    let good = ClientNode::new(
        0,
        qdevice::catalog::by_name("belem")
            .expect("catalog")
            .backend(1),
        &qaoa,
    )
    .expect("transpiles");
    let bad = ClientNode::new(
        1,
        qdevice::catalog::by_name("manila")
            .expect("catalog")
            .backend(2),
        &vqe,
    )
    .expect("transpiles");

    let mut session = EnsembleSession::from_clients(&qaoa, cfg, vec![good, bad]).expect("builds");
    assert_eq!(session.num_clients(), 2);
    let err = ThreadedExecutor::new().run(&mut session).unwrap_err();
    assert!(matches!(err, EqcError::Internal(_)), "{err:?}");
    assert_eq!(
        session.num_clients(),
        1,
        "the surviving client must be handed back on the error path"
    );
}

#[test]
fn pooled_executor_returns_all_clients_on_error() {
    // The pool keeps clients behind mutexes, so even the client whose
    // task panicked is recovered — an errored session keeps its fleet.
    let qaoa = QaoaProblem::maxcut_ring4();
    let vqe = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_qaoa().with_epochs(2).with_shots(64);

    let good = ClientNode::new(
        0,
        qdevice::catalog::by_name("belem")
            .expect("catalog")
            .backend(1),
        &qaoa,
    )
    .expect("transpiles");
    let bad = ClientNode::new(
        1,
        qdevice::catalog::by_name("manila")
            .expect("catalog")
            .backend(2),
        &vqe,
    )
    .expect("transpiles");

    let mut session = EnsembleSession::from_clients(&qaoa, cfg, vec![good, bad]).expect("builds");
    let err = PooledExecutor::new()
        .workers(2)
        .run(&mut session)
        .unwrap_err();
    assert!(matches!(err, EqcError::Internal(_)), "{err:?}");
    assert_eq!(
        session.num_clients(),
        2,
        "every client recovered, panicked one included"
    );
}
