//! Failure-injection and robustness tests: pathological devices,
//! degenerate ensembles and extreme calibrations must degrade gracefully.

use eqc::prelude::*;
use qdevice::{DriftModel, QueueModel, SimTime};

/// A device with error rates at the physical clamp limits.
fn broken_backend(seed: u64) -> QpuBackend {
    let mut cal = qdevice::Calibration::uniform(5, 2.0, 1.5, 0.4, 0.6, 0.45);
    cal.degrade(1e6, 1e6); // slam into the clamps
    QpuBackend::new(
        "broken",
        Topology::line(5),
        cal,
        DriftModel::linear(10.0, 10.0),
        QueueModel::light(1.0),
        24.0,
        seed,
    )
}

#[test]
fn broken_device_still_returns_valid_counts() {
    let mut b = CircuitBuilder::new(3);
    b.h(0).cx(0, 1).cx(1, 2);
    let circuit = b.build();
    let mut backend = broken_backend(1);
    let job = backend.execute(&circuit, &[0, 1, 2], 2048, SimTime::ZERO);
    assert_eq!(job.counts.total(), 2048);
    // Near-maximal noise: the distribution should be close to uniform.
    let p0 = job.counts.probability(0);
    assert!(p0 < 0.5, "fully depolarized device should not retain structure");
}

#[test]
fn ensemble_with_one_broken_device_still_learns() {
    let problem = QaoaProblem::maxcut_ring4();
    let mut clients: Vec<ClientNode> = ["belem", "manila", "bogota"]
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let be = catalog::by_name(n).expect("catalog device").backend(40 + i as u64);
            ClientNode::new(i, be, &problem).expect("fits")
        })
        .collect();
    clients.push(ClientNode::new(3, broken_backend(7), &problem).expect("fits"));
    let cfg = EqcConfig::paper_qaoa()
        .with_epochs(25)
        .with_shots(2048)
        .with_weights(WeightBounds::new(0.25, 1.75));
    let report = EqcTrainer::new(cfg).train(&problem, clients);
    // Training still converges to a useful cost...
    assert!(
        report.converged_loss(5) < -0.45,
        "ensemble poisoned: {}",
        report.converged_loss(5)
    );
    // ...and the weighting system pins the broken device at the floor.
    let broken = report
        .clients
        .iter()
        .find(|c| c.device == "broken")
        .expect("broken client present");
    let best_weight = report
        .clients
        .iter()
        .map(|c| c.mean_weight)
        .fold(0.0f64, f64::max);
    assert!(
        broken.mean_weight < 0.45,
        "broken device weight {} not suppressed",
        broken.mean_weight
    );
    assert!(best_weight > 1.0, "some healthy device should be amplified");
}

#[test]
fn ensemble_with_glacial_device_completes() {
    // One device 10000x slower than the rest must not stall training.
    let problem = QaoaProblem::maxcut_ring4();
    let mut clients: Vec<ClientNode> = ["belem", "manila"]
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let be = catalog::by_name(n).expect("catalog device").backend(50 + i as u64);
            ClientNode::new(i, be, &problem).expect("fits")
        })
        .collect();
    let spec = catalog::by_name("quito").expect("catalog device");
    let glacial = QpuBackend::new(
        "glacial",
        spec.topology(),
        spec.calibration(),
        DriftModel::none(),
        QueueModel::congested(50_000.0, 0.1, 0.0),
        24.0,
        9,
    );
    clients.push(ClientNode::new(2, glacial, &problem).expect("fits"));
    let cfg = EqcConfig::paper_qaoa().with_epochs(10).with_shots(512);
    let report = EqcTrainer::new(cfg).train(&problem, clients);
    assert_eq!(report.epochs, 10);
    // The glacial device contributes almost nothing.
    let g = report
        .clients
        .iter()
        .find(|c| c.device == "glacial")
        .expect("glacial client present");
    let fast_total: u64 = report
        .clients
        .iter()
        .filter(|c| c.device != "glacial")
        .map(|c| c.tasks_completed)
        .sum();
    assert!(g.tasks_completed <= 2);
    assert!(fast_total > 20);
}

#[test]
fn single_client_ensemble_degenerates_to_single_device() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(5).with_shots(512);
    let mk = |seed| {
        ClientNode::new(
            0,
            catalog::by_name("manila").expect("catalog device").backend(seed),
            &problem,
        )
        .expect("fits")
    };
    let eqc = EqcTrainer::new(cfg).train(&problem, vec![mk(3)]);
    let single = SingleDeviceTrainer::new(cfg).train(&problem, mk(3));
    // Same device, same seeds, no concurrency: identical parameters.
    assert_eq!(eqc.final_params, single.final_params);
}

#[test]
fn weighting_with_identical_devices_is_neutral() {
    let problem = QaoaProblem::maxcut_ring4();
    let clients: Vec<ClientNode> = (0..3)
        .map(|i| {
            let be = catalog::by_name("manila").expect("catalog device").backend(60);
            ClientNode::new(i, be, &problem).expect("fits")
        })
        .collect();
    let cfg = EqcConfig::paper_qaoa()
        .with_epochs(4)
        .with_shots(256)
        .with_weights(WeightBounds::new(0.5, 1.5));
    let report = EqcTrainer::new(cfg).train(&problem, clients);
    // Identical devices: every weight collapses to the band midpoint.
    for sample in &report.weight_trace {
        for &w in &sample.weights {
            assert!((w - 1.0).abs() < 0.51, "weight {w} drifted for identical devices");
        }
    }
}

#[test]
fn zero_parameter_resilience() {
    // A problem whose parameter does not appear in some template must not
    // crash the client (returns zero gradient).
    use qcircuit::ParamId;
    use vqa::{GradientTask, TaskSlice};
    let problem = QaoaProblem::maxcut_ring4();
    let mut client = ClientNode::new(
        0,
        catalog::by_name("belem").expect("catalog device").backend(3),
        &problem,
    )
    .expect("fits");
    let r = client.run_task(
        &problem,
        GradientTask {
            param: ParamId(9),
            slice: TaskSlice::Full,
        },
        &[0.0; 10],
        64,
        SimTime::ZERO,
    );
    assert_eq!(r.gradient, 0.0);
    assert_eq!(r.circuits_run, 0);
}
