//! Failure-injection and robustness tests: pathological devices,
//! degenerate ensembles, extreme calibrations and invalid inputs must
//! degrade gracefully — as typed errors or harmless reports, never
//! panics.

use eqc::prelude::*;
use qdevice::{DriftModel, QueueModel, SimTime};

/// A device with error rates at the physical clamp limits.
fn broken_backend(seed: u64) -> QpuBackend {
    let mut cal = qdevice::Calibration::uniform(5, 2.0, 1.5, 0.4, 0.6, 0.45);
    cal.degrade(1e6, 1e6); // slam into the clamps
    QpuBackend::new(
        "broken",
        Topology::line(5),
        cal,
        DriftModel::linear(10.0, 10.0),
        QueueModel::light(1.0),
        24.0,
        seed,
    )
}

#[test]
fn broken_device_still_returns_valid_counts() {
    let mut b = CircuitBuilder::new(3);
    b.h(0).cx(0, 1).cx(1, 2);
    let circuit = b.build();
    let mut backend = broken_backend(1);
    let job = backend.execute(&circuit, &[0, 1, 2], 2048, SimTime::ZERO);
    assert_eq!(job.counts.total(), 2048);
    // Near-maximal noise: the distribution should be close to uniform.
    let p0 = job.counts.probability(0);
    assert!(
        p0 < 0.5,
        "fully depolarized device should not retain structure"
    );
}

#[test]
fn ensemble_with_one_broken_device_still_learns() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa()
        .with_epochs(25)
        .with_shots(2048)
        .with_weights(WeightBounds::new(0.25, 1.75).expect("valid band"));
    let report = Ensemble::builder()
        .devices(["belem", "manila", "bogota"])
        .device_seed(40)
        .backend(broken_backend(7))
        .config(cfg)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    // Training still converges to a useful cost...
    assert!(
        report.converged_loss(5) < -0.45,
        "ensemble poisoned: {}",
        report.converged_loss(5)
    );
    // ...and the weighting system pins the broken device at the floor.
    let broken = report
        .clients
        .iter()
        .find(|c| c.device == "broken")
        .expect("broken client present");
    let best_weight = report
        .clients
        .iter()
        .map(|c| c.mean_weight)
        .fold(0.0f64, f64::max);
    assert!(
        broken.mean_weight < 0.45,
        "broken device weight {} not suppressed",
        broken.mean_weight
    );
    assert!(best_weight > 1.0, "some healthy device should be amplified");
}

#[test]
fn ensemble_with_glacial_device_completes() {
    // One device 10000x slower than the rest must not stall training.
    let problem = QaoaProblem::maxcut_ring4();
    let spec = catalog::by_name("quito").expect("catalog device");
    let glacial = QpuBackend::new(
        "glacial",
        spec.topology(),
        spec.calibration(),
        DriftModel::none(),
        QueueModel::congested(50_000.0, 0.1, 0.0),
        24.0,
        9,
    );
    let cfg = EqcConfig::paper_qaoa().with_epochs(10).with_shots(512);
    let report = Ensemble::builder()
        .devices(["belem", "manila"])
        .device_seed(50)
        .backend(glacial)
        .config(cfg)
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_eq!(report.epochs, 10);
    // The glacial device contributes almost nothing.
    let g = report
        .clients
        .iter()
        .find(|c| c.device == "glacial")
        .expect("glacial client present");
    let fast_total: u64 = report
        .clients
        .iter()
        .filter(|c| c.device != "glacial")
        .map(|c| c.tasks_completed)
        .sum();
    assert!(g.tasks_completed <= 2);
    assert!(fast_total > 20);
}

#[test]
fn single_client_ensemble_degenerates_to_single_device() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(5).with_shots(512);
    let mk = || {
        Ensemble::builder()
            .device("manila")
            .device_seed(3)
            .config(cfg)
            .build()
            .expect("builds")
    };
    // Same device, same seeds, no concurrency: identical parameters from
    // the discrete-event and sequential substrates.
    let eqc = mk().train(&problem).expect("trains");
    let single = mk()
        .train_with(&SequentialExecutor::new(), &problem)
        .expect("trains");
    assert_eq!(eqc.final_params, single.final_params);
}

#[test]
fn weighting_with_identical_devices_is_neutral() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa()
        .with_epochs(4)
        .with_shots(256)
        .with_weights(WeightBounds::new(0.5, 1.5).expect("valid band"));
    let mut builder = Ensemble::builder().config(cfg);
    for _ in 0..3 {
        let be = catalog::by_name("manila")
            .expect("catalog device")
            .backend(60);
        builder = builder.backend(be);
    }
    let report = builder
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    // Identical devices: every weight collapses to the band midpoint.
    for sample in &report.weight_trace {
        for &w in &sample.weights {
            assert!(
                (w - 1.0).abs() < 0.51,
                "weight {w} drifted for identical devices"
            );
        }
    }
}

#[test]
fn zero_parameter_resilience() {
    // A problem whose parameter does not appear in some template must not
    // crash the client (returns zero gradient).
    use qcircuit::ParamId;
    use vqa::{GradientTask, TaskSlice};
    let problem = QaoaProblem::maxcut_ring4();
    let mut client = ClientNode::new(
        0,
        catalog::by_name("belem")
            .expect("catalog device")
            .backend(3),
        &problem,
    )
    .expect("fits");
    let r = client.run_task(
        &problem,
        GradientTask {
            param: ParamId(9),
            slice: TaskSlice::Full,
        },
        &[0.0; 10],
        64,
        SimTime::ZERO,
    );
    assert_eq!(r.gradient, 0.0);
    assert_eq!(r.circuits_run, 0);
}

#[test]
fn invalid_inputs_are_errors_not_panics() {
    let problem = QaoaProblem::maxcut_ring4();
    // Unknown device.
    assert!(matches!(
        Ensemble::builder().device("nope").build(),
        Err(EqcError::UnknownDevice(_))
    ));
    // Empty fleet.
    assert!(matches!(
        Ensemble::builder().build(),
        Err(EqcError::EmptyEnsemble)
    ));
    // Bad configuration.
    assert!(matches!(
        Ensemble::builder()
            .device("belem")
            .config(EqcConfig::paper_qaoa().with_learning_rate(-1.0))
            .build(),
        Err(EqcError::InvalidConfig(_))
    ));
    // Bad weight band.
    assert!(WeightBounds::new(2.0, 1.0).is_err());
    // Oversized problem vs a 5-qubit device becomes a transpile error.
    let big = VqeProblem::new(
        "vqe-8q",
        vqa::hamiltonians::transverse_field_ising(8, 1.0, 1.0),
        vqa::ansatz::hardware_efficient_layers(8, 1),
    );
    let r = Ensemble::builder()
        .device("belem")
        .config(EqcConfig::paper_qaoa().with_epochs(1).with_shots(64))
        .build()
        .expect("builds")
        .train(&big);
    assert!(
        matches!(r, Err(EqcError::Transpile { .. })),
        "8q problem on a 5q device must fail cleanly: {r:?}"
    );
    let _ = problem;
}
