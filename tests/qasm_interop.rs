//! Integration of the OpenQASM interchange with the transpiler and
//! devices: what a Qiskit-era toolchain would do round-trips through this
//! stack.

use eqc::prelude::*;
use qcircuit::qasm;

#[test]
fn transpiled_circuit_exports_and_reimports() {
    // Logical ansatz -> transpile for Belem -> bind -> QASM -> parse back
    // -> identical measurement distribution.
    let ansatz = vqa::ansatz::hardware_efficient(4);
    let t = transpile(
        &ansatz,
        &catalog::by_name("belem")
            .expect("catalog device")
            .topology(),
        &TranspileOptions::default(),
    )
    .expect("fits");
    let (compact, _) = t.compact_for_simulation().expect("compacts");
    let params: Vec<f64> = (0..16).map(|i| 0.15 * i as f64 - 1.0).collect();
    let bound = compact.bind(&params).expect("bindable");

    let text = qasm::to_qasm(&bound).expect("bound circuit exports");
    // The physical circuit is in the IBM basis: only native mnemonics.
    for line in text.lines().skip(4) {
        if line.starts_with("measure") || line.is_empty() {
            continue;
        }
        let mnemonic = line.split(['(', ' ']).next().expect("non-empty line");
        assert!(
            ["x", "sx", "rz", "cx"].contains(&mnemonic),
            "non-native gate in exported QASM: {line}"
        );
    }

    let parsed = qasm::from_qasm(&text).expect("parses back");
    let a = bound.run_statevector(&[]).expect("runs");
    let b = parsed.run_statevector(&[]).expect("runs");
    for (pa, pb) in a.probabilities().iter().zip(b.probabilities()) {
        assert!((pa - pb).abs() < 1e-9);
    }
}

#[test]
fn qasm_circuit_executes_on_simulated_device() {
    // A hand-written QASM program runs on a catalog backend end-to-end.
    let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n\
                measure q[0] -> c[0];\nmeasure q[1] -> c[1];\nmeasure q[2] -> c[2];\n";
    let circuit = qasm::from_qasm(text).expect("valid program");
    let mut backend = catalog::by_name("manila")
        .expect("catalog device")
        .backend(5);
    let job = backend.execute(&circuit, &[0, 1, 2], 8192, qdevice::SimTime::ZERO);
    let ghz_mass = job.counts.probability(0) + job.counts.probability(0b111);
    assert!(ghz_mass > 0.8, "GHZ correlations lost: {ghz_mass}");
}

#[test]
fn diagram_renders_transpiled_circuits() {
    let ansatz = vqa::ansatz::hardware_efficient(4);
    let t = transpile(
        &ansatz,
        &catalog::by_name("bogota")
            .expect("catalog device")
            .topology(),
        &TranspileOptions::default(),
    )
    .expect("fits");
    let art = qcircuit::diagram::render(&t.circuit);
    // One row per physical wire, all aligned.
    assert_eq!(art.lines().count(), 5);
    let widths: Vec<usize> = art.lines().map(|l| l.chars().count()).collect();
    assert!(widths.windows(2).all(|w| w[0] == w[1]));
    assert!(art.contains("[SX]"));
}
