//! The multi-tenant fleet end to end: single-tenant runs replay the
//! standalone session API byte for byte on every deterministic
//! substrate, `Unshared` tenants are invariant to co-tenants, the
//! pooled fleet substrate replays the discrete-event fleet exactly,
//! and the arbiters split capacity the way they advertise.

use eqc::prelude::*;

fn cfg(epochs: usize) -> EqcConfig {
    EqcConfig::paper_qaoa()
        .with_epochs(epochs)
        .with_shots(256)
        .with_weights(WeightBounds::new(0.5, 1.5).expect("valid band"))
}

fn fleet_devices() -> Vec<&'static str> {
    vec!["belem", "manila", "bogota", "quito"]
}

fn builder() -> FleetBuilder {
    FleetRuntime::builder()
        .devices(fleet_devices())
        .device_seed(7)
}

fn standalone(config: EqcConfig) -> Ensemble {
    Ensemble::builder()
        .devices(fleet_devices())
        .device_seed(7)
        .config(config)
        .build()
        .expect("builds")
}

#[test]
fn single_tenant_fleet_equals_standalone_across_executors() {
    // The acceptance oracle: one tenant on the fleet must be
    // byte-identical to today's `Ensemble::train` — on the
    // discrete-event fleet substrate, the pooled fleet substrate, and
    // through both deterministic single-session executors (which are
    // now fleet-of-one wrappers themselves).
    let problem = QaoaProblem::maxcut_ring4();
    let config = cfg(5);
    let ensemble = standalone(config);
    let des = ensemble.train(&problem).expect("DES trains");
    let pooled_exec = PooledExecutor::new().workers(3);
    let pooled = ensemble
        .train_with(&pooled_exec, &problem)
        .expect("pooled trains");
    assert_eq!(
        format!("{des:?}"),
        format!("{pooled:?}"),
        "deterministic pool must stay byte-identical to DES"
    );

    for (name, fleet_builder) in [
        ("discrete-event fleet", builder()),
        ("pooled fleet", builder().pooled_workers(3)),
    ] {
        let mut fleet = fleet_builder.build().expect("builds");
        fleet
            .admit(&problem, TenantConfig::new(config))
            .expect("admits");
        let outcome = fleet.run().expect("runs");
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(
            format!("{des:?}"),
            format!("{:?}", outcome.reports[0]),
            "{name}: single-tenant fleet must replay the standalone session byte for byte"
        );
        assert!(outcome.telemetry.tenants[0].results_absorbed > 0);
        assert!(outcome.telemetry.tenants[0].epochs_per_hour > 0.0);
    }
}

#[test]
fn unshared_tenant_reports_are_invariant_to_co_tenants() {
    // With capacity sharing disabled, a tenant's byte-exact trajectory
    // must not depend on who else is on the fleet.
    let problem = QaoaProblem::maxcut_ring4();
    let vqe = VqeProblem::heisenberg_4q();

    let solo = {
        let mut fleet = builder().arbiter(Unshared).build().expect("builds");
        fleet
            .admit(&problem, TenantConfig::new(cfg(4)))
            .expect("admits");
        fleet.run().expect("runs").reports.remove(0)
    };

    let mut fleet = builder().arbiter(Unshared).build().expect("builds");
    let a = fleet
        .admit(&problem, TenantConfig::new(cfg(4)))
        .expect("admits");
    fleet
        .admit(&problem, TenantConfig::new(cfg(3).with_seed(11)))
        .expect("admits");
    fleet
        .admit(
            &vqe,
            TenantConfig::new(EqcConfig::paper_vqe().with_epochs(1).with_shots(64)),
        )
        .expect("admits a different problem");
    let outcome = fleet.run().expect("runs");
    assert_eq!(
        format!("{solo:?}"),
        format!("{:?}", outcome.report(a)),
        "co-tenants must not perturb an unshared tenant"
    );
    // Every tenant trained its own problem to its own budget.
    assert_eq!(outcome.reports[0].problem, outcome.reports[1].problem);
    assert_ne!(
        outcome.reports[0].final_params,
        outcome.reports[1].final_params
    );
    assert_eq!(outcome.reports[2].epochs, 1);
    assert_ne!(outcome.reports[2].problem, outcome.reports[0].problem);
}

#[test]
fn fleet_runs_replay_byte_identically_and_pooled_matches_des() {
    // A genuinely shared fleet (FairShare, more tenant demand than
    // devices) must still be deterministic: same tenants, same seeds,
    // same outcome — and the pooled substrate must replay the
    // discrete-event fleet exactly, telemetry included.
    let problem = QaoaProblem::maxcut_ring4();
    let run = |fleet_builder: FleetBuilder| {
        let mut fleet = fleet_builder.arbiter(FairShare).build().expect("builds");
        for t in 0..3u64 {
            fleet
                .admit(
                    &problem,
                    TenantConfig::new(cfg(3).with_seed(7 + t)).weight((t + 1) as f64),
                )
                .expect("admits");
        }
        fleet.run().expect("runs")
    };
    let des_a = run(builder());
    let des_b = run(builder());
    assert_eq!(des_a, des_b, "fleet replay must be deterministic");

    let pooled = run(builder().pooled_workers(2));
    assert_eq!(
        des_a.reports, pooled.reports,
        "pooled fleet reports replay DES"
    );
    assert_eq!(
        des_a.telemetry, pooled.telemetry,
        "pooled fleet telemetry (grants, waits, shares) replays DES"
    );
    assert!(pooled.pool.is_some(), "pooled runs carry pool telemetry");
    assert!(des_a.pool.is_none());
}

#[test]
fn fair_share_splits_capacity_by_weight() {
    // Two identical tenants, weights 3:1, on a fleet they each could
    // saturate: the heavy tenant must hold more concurrent capacity,
    // finish sooner in its own virtual time, and both must train to
    // completion with nonzero throughput.
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().arbiter(FairShare).build().expect("builds");
    let heavy = fleet
        .admit(
            &problem,
            TenantConfig::new(cfg(4)).weight(3.0).label("heavy"),
        )
        .expect("admits");
    let light = fleet
        .admit(
            &problem,
            TenantConfig::new(cfg(4)).weight(1.0).label("light"),
        )
        .expect("admits");
    let outcome = fleet.run().expect("runs");

    assert_eq!(outcome.telemetry.arbiter, "fair-share");
    assert_eq!(outcome.telemetry.devices, 4);
    for id in [heavy, light] {
        assert_eq!(outcome.report(id).epochs, 4, "every tenant completes");
        assert!(outcome.tenant(id).results_absorbed > 0);
        assert!(
            outcome.tenant(id).epochs_per_hour > 0.0,
            "nonzero throughput"
        );
    }
    assert_eq!(outcome.tenant(heavy).label, "heavy");
    let heavy_share: u64 = outcome.tenant(heavy).client_share.iter().sum();
    let light_share: u64 = outcome.tenant(light).client_share.iter().sum();
    assert!(heavy_share > 0 && light_share > 0, "both used the pool");
    assert!(
        outcome.tenant(heavy).virtual_hours <= outcome.tenant(light).virtual_hours,
        "3x the capacity share should not finish later: heavy {:.3} h vs light {:.3} h",
        outcome.tenant(heavy).virtual_hours,
        outcome.tenant(light).virtual_hours
    );
    // The constrained tenants actually waited for capacity somewhere.
    let waited: u64 = outcome
        .telemetry
        .tenants
        .iter()
        .map(|t| t.wait_rounds)
        .sum();
    assert!(
        waited > 0,
        "shared fleet with excess demand must defer work"
    );
}

#[test]
fn priority_arbiter_starves_visibly_but_everyone_finishes() {
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().arbiter(PriorityArbiter).build().expect("builds");
    let high = fleet
        .admit(&problem, TenantConfig::new(cfg(3)).priority(10))
        .expect("admits");
    let low = fleet
        .admit(&problem, TenantConfig::new(cfg(3).with_seed(11)))
        .expect("admits");
    let outcome = fleet.run().expect("runs");
    assert_eq!(outcome.telemetry.arbiter, "priority");
    assert_eq!(outcome.report(high).epochs, 3);
    assert_eq!(
        outcome.report(low).epochs,
        3,
        "leftover capacity still serves"
    );
    assert_eq!(outcome.tenant(high).starved_rounds, 0);
    assert!(
        outcome.tenant(low).starved_rounds > 0,
        "the low-priority tenant's starvation must be accounted: {:?}",
        outcome.tenant(low)
    );
    assert!(outcome.tenant(low).wait_rounds >= outcome.tenant(high).wait_rounds);
}

#[test]
fn tenants_carry_their_own_policy_stacks() {
    // Per-tenant policies: one tenant on the default stack, one on
    // equi-ensemble weighting — in the same fleet run, each report must
    // carry its own stack's telemetry and trajectory.
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().build().expect("builds");
    let fidelity = fleet
        .admit(&problem, TenantConfig::new(cfg(3)))
        .expect("admits");
    let equi = fleet
        .admit(
            &problem,
            TenantConfig::new(cfg(3))
                .policies(PolicyConfig::default().with_weighting(EquiEnsemble)),
        )
        .expect("admits");
    let outcome = fleet.run().expect("runs");
    assert_eq!(outcome.report(fidelity).policy.weighting, "fidelity");
    assert_eq!(outcome.report(equi).policy.weighting, "equi-ensemble");
    assert!(outcome.report(equi).weight_trace.is_empty());
    assert!(!outcome.report(fidelity).weight_trace.is_empty());
    assert_ne!(
        outcome.report(fidelity).final_params,
        outcome.report(equi).final_params
    );
}

#[test]
fn fleet_outlives_its_tenant_batches() {
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().build().expect("builds");
    assert_eq!(fleet.run().unwrap_err(), EqcError::NoTenants);
    fleet
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits");
    let first = fleet.run().expect("first batch");
    assert_eq!(fleet.num_tenants(), 0, "run consumes the batch");
    fleet
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits again");
    let second = fleet.run().expect("second batch");
    assert_eq!(
        first.reports, second.reports,
        "devices persist across batches: identical replay"
    );
}
