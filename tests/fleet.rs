//! The multi-tenant fleet end to end: single-tenant runs replay the
//! standalone session API byte for byte on every deterministic
//! substrate, `Unshared` tenants are invariant to co-tenants, the
//! pooled fleet substrate replays the discrete-event fleet exactly,
//! and the arbiters split capacity the way they advertise.

use eqc::prelude::*;

fn cfg(epochs: usize) -> EqcConfig {
    EqcConfig::paper_qaoa()
        .with_epochs(epochs)
        .with_shots(256)
        .with_weights(WeightBounds::new(0.5, 1.5).expect("valid band"))
}

fn fleet_devices() -> Vec<&'static str> {
    vec!["belem", "manila", "bogota", "quito"]
}

fn builder() -> FleetBuilder {
    FleetRuntime::builder()
        .devices(fleet_devices())
        .device_seed(7)
}

fn standalone(config: EqcConfig) -> Ensemble {
    Ensemble::builder()
        .devices(fleet_devices())
        .device_seed(7)
        .config(config)
        .build()
        .expect("builds")
}

#[test]
fn single_tenant_fleet_equals_standalone_across_executors() {
    // The acceptance oracle: one tenant on the fleet must be
    // byte-identical to today's `Ensemble::train` — on the
    // discrete-event fleet substrate, the pooled fleet substrate, and
    // through both deterministic single-session executors (which are
    // now fleet-of-one wrappers themselves).
    let problem = QaoaProblem::maxcut_ring4();
    let config = cfg(5);
    let ensemble = standalone(config);
    let des = ensemble.train(&problem).expect("DES trains");
    let pooled_exec = PooledExecutor::new().workers(3);
    let pooled = ensemble
        .train_with(&pooled_exec, &problem)
        .expect("pooled trains");
    assert_eq!(
        format!("{des:?}"),
        format!("{pooled:?}"),
        "deterministic pool must stay byte-identical to DES"
    );

    for (name, fleet_builder) in [
        ("discrete-event fleet", builder()),
        ("pooled fleet", builder().pooled_workers(3)),
    ] {
        let mut fleet = fleet_builder.build().expect("builds");
        fleet
            .admit(&problem, TenantConfig::new(config))
            .expect("admits");
        let outcome = fleet.run().expect("runs");
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(
            format!("{des:?}"),
            format!("{:?}", outcome.reports[0]),
            "{name}: single-tenant fleet must replay the standalone session byte for byte"
        );
        assert!(outcome.telemetry.tenants[0].results_absorbed > 0);
        assert!(outcome.telemetry.tenants[0].epochs_per_hour > 0.0);
    }
}

#[test]
fn unshared_tenant_reports_are_invariant_to_co_tenants() {
    // With capacity sharing disabled, a tenant's byte-exact trajectory
    // must not depend on who else is on the fleet.
    let problem = QaoaProblem::maxcut_ring4();
    let vqe = VqeProblem::heisenberg_4q();

    let solo = {
        let mut fleet = builder().arbiter(Unshared).build().expect("builds");
        fleet
            .admit(&problem, TenantConfig::new(cfg(4)))
            .expect("admits");
        fleet.run().expect("runs").reports.remove(0)
    };

    let mut fleet = builder().arbiter(Unshared).build().expect("builds");
    let a = fleet
        .admit(&problem, TenantConfig::new(cfg(4)))
        .expect("admits");
    fleet
        .admit(&problem, TenantConfig::new(cfg(3).with_seed(11)))
        .expect("admits");
    fleet
        .admit(
            &vqe,
            TenantConfig::new(EqcConfig::paper_vqe().with_epochs(1).with_shots(64)),
        )
        .expect("admits a different problem");
    let outcome = fleet.run().expect("runs");
    assert_eq!(
        format!("{solo:?}"),
        format!("{:?}", outcome.report(a)),
        "co-tenants must not perturb an unshared tenant"
    );
    // Every tenant trained its own problem to its own budget.
    assert_eq!(outcome.reports[0].problem, outcome.reports[1].problem);
    assert_ne!(
        outcome.reports[0].final_params,
        outcome.reports[1].final_params
    );
    assert_eq!(outcome.reports[2].epochs, 1);
    assert_ne!(outcome.reports[2].problem, outcome.reports[0].problem);
}

#[test]
fn fleet_runs_replay_byte_identically_and_pooled_matches_des() {
    // A genuinely shared fleet (FairShare, more tenant demand than
    // devices) must still be deterministic: same tenants, same seeds,
    // same outcome — and the pooled substrate must replay the
    // discrete-event fleet exactly, telemetry included.
    let problem = QaoaProblem::maxcut_ring4();
    let run = |fleet_builder: FleetBuilder| {
        let mut fleet = fleet_builder.arbiter(FairShare).build().expect("builds");
        for t in 0..3u64 {
            fleet
                .admit(
                    &problem,
                    TenantConfig::new(cfg(3).with_seed(7 + t)).weight((t + 1) as f64),
                )
                .expect("admits");
        }
        fleet.run().expect("runs")
    };
    let des_a = run(builder());
    let des_b = run(builder());
    assert_eq!(des_a, des_b, "fleet replay must be deterministic");

    let pooled = run(builder().pooled_workers(2));
    assert_eq!(
        des_a.reports, pooled.reports,
        "pooled fleet reports replay DES"
    );
    assert_eq!(
        des_a.telemetry, pooled.telemetry,
        "pooled fleet telemetry (grants, waits, shares) replays DES"
    );
    assert!(pooled.pool.is_some(), "pooled runs carry pool telemetry");
    assert!(des_a.pool.is_none());
}

#[test]
fn fair_share_splits_capacity_by_weight() {
    // Two identical tenants, weights 3:1, on a fleet they each could
    // saturate: the heavy tenant must hold more concurrent capacity,
    // finish sooner in its own virtual time, and both must train to
    // completion with nonzero throughput.
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().arbiter(FairShare).build().expect("builds");
    let heavy = fleet
        .admit(
            &problem,
            TenantConfig::new(cfg(4)).weight(3.0).label("heavy"),
        )
        .expect("admits");
    let light = fleet
        .admit(
            &problem,
            TenantConfig::new(cfg(4)).weight(1.0).label("light"),
        )
        .expect("admits");
    let outcome = fleet.run().expect("runs");

    assert_eq!(outcome.telemetry.arbiter, "fair-share");
    assert_eq!(outcome.telemetry.devices, 4);
    for id in [heavy, light] {
        assert_eq!(outcome.report(id).epochs, 4, "every tenant completes");
        assert!(outcome.tenant(id).results_absorbed > 0);
        assert!(
            outcome.tenant(id).epochs_per_hour > 0.0,
            "nonzero throughput"
        );
    }
    assert_eq!(outcome.tenant(heavy).label, "heavy");
    let heavy_share: u64 = outcome.tenant(heavy).client_share.iter().sum();
    let light_share: u64 = outcome.tenant(light).client_share.iter().sum();
    assert!(heavy_share > 0 && light_share > 0, "both used the pool");
    assert!(
        outcome.tenant(heavy).virtual_hours <= outcome.tenant(light).virtual_hours,
        "3x the capacity share should not finish later: heavy {:.3} h vs light {:.3} h",
        outcome.tenant(heavy).virtual_hours,
        outcome.tenant(light).virtual_hours
    );
    // The constrained tenants actually waited for capacity somewhere.
    let waited: u64 = outcome
        .telemetry
        .tenants
        .iter()
        .map(|t| t.wait_rounds)
        .sum();
    assert!(
        waited > 0,
        "shared fleet with excess demand must defer work"
    );
}

#[test]
fn priority_arbiter_starves_visibly_but_everyone_finishes() {
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().arbiter(PriorityArbiter).build().expect("builds");
    let high = fleet
        .admit(&problem, TenantConfig::new(cfg(3)).priority(10))
        .expect("admits");
    let low = fleet
        .admit(&problem, TenantConfig::new(cfg(3).with_seed(11)))
        .expect("admits");
    let outcome = fleet.run().expect("runs");
    assert_eq!(outcome.telemetry.arbiter, "priority");
    assert_eq!(outcome.report(high).epochs, 3);
    assert_eq!(
        outcome.report(low).epochs,
        3,
        "leftover capacity still serves"
    );
    assert_eq!(outcome.tenant(high).starved_rounds, 0);
    assert!(
        outcome.tenant(low).starved_rounds > 0,
        "the low-priority tenant's starvation must be accounted: {:?}",
        outcome.tenant(low)
    );
    assert!(outcome.tenant(low).wait_rounds >= outcome.tenant(high).wait_rounds);
}

#[test]
fn tenants_carry_their_own_policy_stacks() {
    // Per-tenant policies: one tenant on the default stack, one on
    // equi-ensemble weighting — in the same fleet run, each report must
    // carry its own stack's telemetry and trajectory.
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().build().expect("builds");
    let fidelity = fleet
        .admit(&problem, TenantConfig::new(cfg(3)))
        .expect("admits");
    let equi = fleet
        .admit(
            &problem,
            TenantConfig::new(cfg(3))
                .policies(PolicyConfig::default().with_weighting(EquiEnsemble)),
        )
        .expect("admits");
    let outcome = fleet.run().expect("runs");
    assert_eq!(outcome.report(fidelity).policy.weighting, "fidelity");
    assert_eq!(outcome.report(equi).policy.weighting, "equi-ensemble");
    assert!(outcome.report(equi).weight_trace.is_empty());
    assert!(!outcome.report(fidelity).weight_trace.is_empty());
    assert_ne!(
        outcome.report(fidelity).final_params,
        outcome.report(equi).final_params
    );
}

#[test]
fn streaming_service_at_t_zero_replays_the_batch_runtime() {
    // The service acceptance oracle: a streaming run whose tenants all
    // arrive at t = 0 must replay `FleetRuntime::run` byte for byte —
    // reports and fleet telemetry — on both deterministic substrates.
    // (Pool telemetry's steal counters are wall-clock scheduling noise,
    // excluded here exactly as in the batch pooled-vs-DES test.)
    let problem = QaoaProblem::maxcut_ring4();
    let tenants = |t: u64| TenantConfig::new(cfg(3).with_seed(7 + t)).weight((t + 1) as f64);

    for (name, batch_builder, service_builder) in [
        ("discrete-event", builder(), builder()),
        (
            "pooled",
            builder().pooled_workers(2),
            builder().pooled_workers(2),
        ),
    ] {
        let batch = {
            let mut fleet = batch_builder.arbiter(FairShare).build().expect("builds");
            for t in 0..3u64 {
                fleet.admit(&problem, tenants(t)).expect("admits");
            }
            fleet.run().expect("runs")
        };
        let mut service = service_builder
            .arbiter(FairShare)
            .service()
            .expect("builds");
        let handles: Vec<TenantHandle> = (0..3u64)
            .map(|t| service.admit(&problem, tenants(t)).expect("admits"))
            .collect();
        let streamed = service.close().expect("closes");
        assert_eq!(
            format!("{:?}", batch.reports),
            format!("{:?}", streamed.fleet.reports),
            "{name}: t = 0 streaming must replay the batch reports byte for byte"
        );
        assert_eq!(
            format!("{:?}", batch.telemetry),
            format!("{:?}", streamed.fleet.telemetry),
            "{name}: t = 0 streaming must replay the batch telemetry byte for byte"
        );
        assert_eq!(batch.pool.is_some(), streamed.fleet.pool.is_some());
        for (i, &h) in handles.iter().enumerate() {
            assert_eq!(streamed.try_report(h).expect("fresh"), &batch.reports[i]);
        }
        assert_eq!(streamed.service.admissions, 3);
        assert_eq!(streamed.service.retirements, 3);
        assert_eq!(streamed.service.idle_virtual_hours, 0.0);
        assert_eq!(streamed.service.deadline_hits, 0);
        assert_eq!(streamed.service.deadline_misses, 0);
    }
}

#[test]
fn staggered_service_replays_and_pooled_matches_des() {
    // Mid-run admissions: tenants arriving while co-tenants are in
    // flight must still be deterministic (two DES runs byte-identical)
    // and substrate-independent (pooled streaming replays DES exactly,
    // service telemetry included).
    let problem = QaoaProblem::maxcut_ring4();
    let run = |fleet_builder: FleetBuilder| {
        let mut service = fleet_builder.arbiter(FairShare).service().expect("builds");
        for (t, arrival_h) in [(0u64, 0.0), (1, 0.3), (2, 0.7)] {
            service
                .admit_at(
                    &problem,
                    TenantConfig::new(cfg(3).with_seed(7 + t)).weight((t + 1) as f64),
                    arrival_h,
                )
                .expect("admits");
        }
        service.close().expect("closes")
    };
    let des_a = run(builder());
    let des_b = run(builder());
    assert_eq!(des_a, des_b, "streaming replay must be deterministic");

    let pooled = run(builder().pooled_workers(2));
    assert_eq!(
        des_a.fleet.reports, pooled.fleet.reports,
        "pooled streaming reports replay DES"
    );
    assert_eq!(
        des_a.fleet.telemetry, pooled.fleet.telemetry,
        "pooled streaming fleet telemetry replays DES"
    );
    assert_eq!(
        des_a.service, pooled.service,
        "pooled streaming service telemetry replays DES"
    );
    assert!(pooled.fleet.pool.is_some());

    // Arrivals actually landed mid-run: the last tenant arrived after
    // the fleet clock started and everyone still trained to budget.
    for record in &des_a.service.tenants {
        assert_eq!(record.epochs, 3);
        assert!(record.retired_h > record.arrival_h);
    }
    assert_eq!(des_a.service.tenants[2].arrival_h, 0.7);
}

#[test]
fn edf_meets_deadlines_where_fair_share_misses() {
    // The SLO fixture: tenant A's deadline sits between its solo
    // makespan and its fair-share-pair makespan, so the deadline is
    // capacity-feasible — EDF must meet it (A has the only finite
    // slack, so it holds full demand) while FairShare, splitting
    // capacity evenly, must miss it.
    let problem = QaoaProblem::maxcut_ring4();
    let a_cfg = || TenantConfig::new(cfg(4)).label("slo");
    let b_cfg = || TenantConfig::new(cfg(4).with_seed(11)).label("besteffort");

    let makespan = |arbiter: FairShare, pair: bool| {
        let mut service = builder().arbiter(arbiter).service().expect("builds");
        let a = service.admit(&problem, a_cfg()).expect("admits");
        if pair {
            service.admit(&problem, b_cfg()).expect("admits");
        }
        let outcome = service.close().expect("closes");
        outcome.try_report(a).expect("fresh").total_hours
    };
    let solo_h = makespan(FairShare, false);
    let fair_h = makespan(FairShare, true);
    assert!(
        fair_h > solo_h,
        "fixture needs real contention: solo {solo_h:.3} h vs shared {fair_h:.3} h"
    );
    let deadline_h = (solo_h + fair_h) / 2.0;

    let outcomes: Vec<ServiceOutcome> = [false, true]
        .into_iter()
        .map(|edf| {
            let fleet_builder = if edf {
                builder().arbiter(EarliestDeadlineFirst)
            } else {
                builder().arbiter(FairShare)
            };
            let mut service = fleet_builder.service().expect("builds");
            let a = service
                .admit(&problem, a_cfg().deadline(deadline_h))
                .expect("admits");
            service.admit(&problem, b_cfg()).expect("admits");
            let outcome = service.close().expect("closes");
            assert_eq!(
                outcome.record(a).expect("recorded").deadline_h,
                Some(deadline_h)
            );
            outcome
        })
        .collect();
    let (fair, edf) = (&outcomes[0], &outcomes[1]);

    assert_eq!(
        (fair.service.deadline_hits, fair.service.deadline_misses),
        (0, 1),
        "fair share must miss the feasible deadline: {}",
        fair.service
    );
    assert_eq!(
        (edf.service.deadline_hits, edf.service.deadline_misses),
        (1, 0),
        "EDF must meet the feasible deadline: {}",
        edf.service
    );
    // EDF grants the SLO tenant its full demand, so it replays its solo
    // trajectory exactly; the best-effort tenant still completes.
    assert_eq!(edf.fleet.reports[0].total_hours, solo_h);
    assert_eq!(edf.fleet.reports[1].epochs, 4);
    assert_eq!(edf.fleet.telemetry.arbiter, "edf");
}

#[test]
fn service_idles_deterministically_between_arrivals() {
    // An empty fleet fast-forwards to the next admission: the gap is
    // accounted as idle hours, the fleet clock lands on the arrival,
    // and tenants retired by earlier drains stay pollable.
    let problem = QaoaProblem::maxcut_ring4();
    let mut service = builder().service().expect("builds");
    let first = service
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits");
    assert_eq!(service.drain().expect("drains"), vec![first]);
    let resume_h = service.now_h();
    assert!(resume_h > 0.0);

    let second = service
        .admit_at(&problem, TenantConfig::new(cfg(2)), resume_h + 5.0)
        .expect("admits into the future");
    assert!(service.poll(second).is_none());
    assert_eq!(service.drain().expect("drains"), vec![second]);
    assert!(service.poll(first).is_some(), "earlier retirees persist");

    let outcome = service.close().expect("closes");
    assert!(
        (outcome.service.idle_virtual_hours - 5.0).abs() < 1e-6,
        "the inter-arrival gap is idle time: {}",
        outcome.service
    );
    assert!(outcome.service.span_virtual_hours > 5.0);
    assert_eq!(
        format!("{:?}", outcome.fleet.reports[0]),
        format!("{:?}", outcome.fleet.reports[1]),
        "same seed, own virtual clock: arrival time must not leak into the report"
    );
}

#[test]
fn stale_tenant_ids_surface_as_typed_errors() {
    // `try_report` / `try_tenant` return the typed error the panicking
    // accessors throw, so callers holding handles across batches can
    // recover instead of crashing.
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().build().expect("builds");
    let stale = fleet
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits");
    let first = fleet.run().expect("first batch");
    assert!(first.try_report(stale).is_ok());

    fleet
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits again");
    let second = fleet.run().expect("second batch");
    assert_eq!(
        second.try_report(stale).unwrap_err(),
        EqcError::StaleTenant {
            held: 0,
            outcome: 1
        }
    );
    assert_eq!(
        second.try_tenant(stale).unwrap_err(),
        EqcError::StaleTenant {
            held: 0,
            outcome: 1
        }
    );
}

#[test]
fn des_builder_round_trips_the_substrate() {
    // `pooled()` is no longer a one-way door: `.des()` undoes it, and
    // the round-tripped fleet is byte-identical to one that never left
    // the discrete-event substrate.
    let problem = QaoaProblem::maxcut_ring4();
    let run = |fleet_builder: FleetBuilder| {
        let mut fleet = fleet_builder.build().expect("builds");
        fleet
            .admit(&problem, TenantConfig::new(cfg(3)))
            .expect("admits");
        fleet.run().expect("runs")
    };
    let des = run(builder());
    let round_tripped = run(builder().pooled_workers(2).des());
    assert_eq!(des, round_tripped, "des() must undo pooled_workers()");
    assert!(round_tripped.pool.is_none(), "no pool telemetry on DES");
}

#[test]
fn fleet_outlives_its_tenant_batches() {
    let problem = QaoaProblem::maxcut_ring4();
    let mut fleet = builder().build().expect("builds");
    assert_eq!(fleet.run().unwrap_err(), EqcError::NoTenants);
    fleet
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits");
    let first = fleet.run().expect("first batch");
    assert_eq!(fleet.num_tenants(), 0, "run consumes the batch");
    fleet
        .admit(&problem, TenantConfig::new(cfg(2)))
        .expect("admits again");
    let second = fleet.run().expect("second batch");
    assert_eq!(
        first.reports, second.reports,
        "devices persist across batches: identical replay"
    );
}
