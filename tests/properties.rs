//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary circuits, topologies and parameters.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Gate};
use transpile::{transpile, Topology, TranspileOptions};

/// Strategy: a random circuit over `n` qubits with 1q rotations, H and CX.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n).prop_map(Gate::X),
        (0..n, -3.0..3.0f64).prop_map(|(q, a)| Gate::Ry(q, Angle::Fixed(a))),
        (0..n, -3.0..3.0f64).prop_map(|(q, a)| Gate::Rz(q, Angle::Fixed(a))),
        (0..n, 0..n).prop_filter_map("distinct operands", move |(a, b)| {
            (a != b).then_some(Gate::Cx(a, b))
        }),
    ];
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g).expect("generated gates are valid");
        }
        c
    })
}

/// Remaps ideal logical probabilities through a transpiled layout and
/// compares with the compacted physical circuit's distribution.
fn distributions_match(circuit: &Circuit, topology: &Topology) -> Result<(), String> {
    let t = transpile(circuit, topology, &TranspileOptions::default())
        .map_err(|e| format!("transpile: {e}"))?;
    let (compact, logical_bits) = t
        .compact_for_simulation()
        .map_err(|e| format!("compact: {e}"))?;
    let n = circuit.num_qubits();
    let logical = circuit
        .run_statevector(&[])
        .map_err(|e| format!("logical run: {e}"))?
        .probabilities();
    let physical = compact
        .run_statevector(&[])
        .map_err(|e| format!("physical run: {e}"))?
        .probabilities();
    let mut remapped = vec![0.0; 1 << n];
    for (basis, p) in physical.iter().enumerate() {
        let mut log_basis = 0usize;
        for (l, &bit) in logical_bits.iter().enumerate() {
            if basis >> bit & 1 == 1 {
                log_basis |= 1 << l;
            }
        }
        remapped[log_basis] += p;
    }
    for (i, (a, b)) in logical.iter().zip(&remapped).enumerate() {
        if (a - b).abs() > 1e-8 {
            return Err(format!("basis {i}: logical {a} vs physical {b}"));
        }
    }
    Ok(())
}

/// A pseudorandom circuit over `n` qubits derived from a seed — used
/// where the engine-equivalence properties need the qubit count and the
/// circuit drawn together (the shim has no `prop_flat_map`).
fn seeded_circuit(n: usize, seed: u64, gates: usize) -> Circuit {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.gen_range(0..n);
        let g = match rng.gen_range(0..5usize) {
            0 => Gate::H(q),
            1 => Gate::X(q),
            2 => Gate::Ry(q, Angle::Fixed(rng.gen_range(-3.0..3.0))),
            3 => Gate::Rz(q, Angle::Fixed(rng.gen_range(-3.0..3.0))),
            _ if n >= 2 => {
                let q2 = (q + rng.gen_range(1..n)) % n;
                Gate::Cx(q, q2)
            }
            _ => Gate::H(q),
        };
        c.push(g).expect("generated gates are valid");
    }
    c
}

/// A 7-qubit drifting backend for the engine-parallelism properties.
fn seven_qubit_backend(seed: u64) -> qdevice::QpuBackend {
    let spec = qdevice::catalog::by_name("casablanca").expect("7-qubit device");
    spec.backend(seed)
}

/// A pseudorandom *parameterized* circuit: like [`seeded_circuit`] but
/// roughly a third of the rotations are symbolic (fresh parameter
/// each). Returns the circuit, its parameter count, and the gate
/// indices of the symbolic occurrences (shift-rule targets).
fn seeded_sym_circuit(n: usize, seed: u64, gates: usize) -> (Circuit, usize, Vec<usize>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let mut params = 0usize;
    let mut sym_gates = Vec::new();
    for _ in 0..gates {
        let q = rng.gen_range(0..n);
        let g = match rng.gen_range(0..6usize) {
            0 => Gate::H(q),
            1 => Gate::Ry(q, Angle::Fixed(rng.gen_range(-3.0..3.0))),
            2 => Gate::Rz(q, Angle::Fixed(rng.gen_range(-3.0..3.0))),
            3 | 4 => {
                let id = params;
                params += 1;
                sym_gates.push(c.gates().len());
                if rng.gen_bool(0.5) {
                    Gate::Ry(q, Angle::sym(id))
                } else {
                    Gate::Rz(q, Angle::sym(id))
                }
            }
            _ if n >= 2 => {
                let q2 = (q + rng.gen_range(1..n)) % n;
                Gate::Cx(q, q2)
            }
            _ => Gate::H(q),
        };
        c.push(g).expect("generated gates are valid");
    }
    if params == 0 {
        sym_gates.push(c.gates().len());
        c.push(Gate::Ry(0, Angle::sym(0))).expect("valid gate");
        params = 1;
    }
    (c, params, sym_gates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transpilation preserves measurement statistics on every topology
    /// shape of Table I.
    #[test]
    fn transpile_preserves_distribution_line(c in arb_circuit(4, 14)) {
        distributions_match(&c, &Topology::line(5)).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn transpile_preserves_distribution_t_shape(c in arb_circuit(4, 14)) {
        distributions_match(&c, &Topology::t_shape()).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn transpile_preserves_distribution_heavy_hex(c in arb_circuit(4, 10)) {
        distributions_match(&c, &Topology::heavy_hex_27()).map_err(TestCaseError::fail)?;
    }

    /// Transpiled circuits only use native gates on coupled pairs.
    #[test]
    fn transpiled_respects_basis_and_coupling(c in arb_circuit(5, 16)) {
        let topo = Topology::t_shape();
        let t = transpile(&c, &topo, &TranspileOptions::default()).expect("fits");
        for g in t.circuit.gates() {
            prop_assert!(matches!(g, Gate::X(_) | Gate::Sx(_) | Gate::Rz(..) | Gate::Cx(..)));
            let qs = g.qubits();
            if qs.len() == 2 {
                prop_assert!(topo.are_adjacent(qs[0], qs[1]));
            }
        }
    }

    /// The peephole optimizer never changes the unitary (up to phase).
    #[test]
    fn peephole_preserves_unitary(c in arb_circuit(3, 12)) {
        let optimized = transpile::optimize::optimize(&c).expect("optimizes");
        let u0 = c.unitary(&[]).expect("bound");
        let u1 = optimized.unitary(&[]).expect("bound");
        prop_assert!(u1.approx_eq_up_to_phase(&u0, 1e-8));
    }

    /// Counts sampled from any circuit distribution sum to the shot
    /// budget and respect the register width.
    #[test]
    fn sampled_counts_are_consistent(c in arb_circuit(3, 10), shots in 1usize..2000) {
        use rand::SeedableRng;
        let sv = c.run_statevector(&[]).expect("bound");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let counts = qsim::sampler::sample_counts(&sv.probabilities(), 3, shots, &mut rng);
        prop_assert_eq!(counts.total(), shots as u64);
        for (basis, _) in counts.iter() {
            prop_assert!(basis < 8);
        }
    }

    /// Weight normalization maps any score set into the band.
    #[test]
    fn weights_stay_in_band(ps in proptest::collection::vec(0.0..1.0f64, 2..12)) {
        let bounds = eqc_core::WeightBounds::new(0.25, 1.75).expect("valid band");
        let ws = eqc_core::normalize_weights(&ps, bounds);
        for w in ws {
            prop_assert!((0.25..=1.75).contains(&w));
        }
    }

    /// Eq. 2 stays within [0, 1] for arbitrary circuit metrics and
    /// calibration quality.
    #[test]
    fn p_correct_is_a_probability(
        g1 in 0usize..200,
        g2 in 0usize..100,
        cd in 0usize..150,
        err_scale in 0.1..20.0f64,
    ) {
        let metrics = transpile::CircuitMetrics {
            g1,
            g2,
            measurements: 5,
            critical_depth: cd,
            depth: cd + 1,
            swaps_inserted: 0,
        };
        let mut cal = qdevice::Calibration::uniform(5, 90.0, 70.0, 0.001, 0.01, 0.02);
        cal.degrade(err_scale, 1.0);
        let p = eqc_core::p_correct(&metrics, &cal);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }

    /// A worker-team density engine is byte-identical to the serial
    /// engine for arbitrary circuits, widths and lane counts — the
    /// partitioned kernels may not change a single bit.
    #[test]
    fn worker_team_density_is_byte_identical_to_serial(
        n in 2usize..8,
        seed in 0u64..256,
        workers in 2usize..6,
        shots in 64usize..1024,
    ) {
        let circuit = seeded_circuit(n, seed, 14);
        let active: Vec<usize> = (0..n).collect();
        let mut serial = seven_qubit_backend(seed);
        let mut par = seven_qubit_backend(seed);
        par.set_parallelism(qsim::ParallelCtx::with_workers(workers));
        let a = serial.execute(&circuit, &active, shots, qdevice::SimTime::ZERO);
        let b = par.execute(&circuit, &active, shots, qdevice::SimTime::ZERO);
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(
            a.completed.as_secs().to_bits(),
            b.completed.as_secs().to_bits()
        );
    }

    /// Fanning independent trajectories over a worker team preserves
    /// counts and the master RNG stream exactly.
    #[test]
    fn worker_team_trajectories_are_byte_identical_to_serial(
        n in 2usize..8,
        seed in 0u64..256,
        workers in 2usize..6,
        trajectories in 2usize..40,
    ) {
        use qdevice::SimulatorKind;
        let circuit = seeded_circuit(n, seed, 10);
        let active: Vec<usize> = (0..n).collect();
        let mut serial =
            seven_qubit_backend(seed).with_simulator(SimulatorKind::Trajectories(trajectories));
        let mut par =
            seven_qubit_backend(seed).with_simulator(SimulatorKind::Trajectories(trajectories));
        par.set_parallelism(qsim::ParallelCtx::with_workers(workers));
        let mut t = qdevice::SimTime::ZERO;
        for _ in 0..2 {
            let a = serial.execute(&circuit, &active, 256, t);
            let b = par.execute(&circuit, &active, 256, t);
            prop_assert_eq!(&a.counts, &b.counts);
            // A second job from the same backends: diverging RNG state
            // after the first job would surface here.
            t = a.completed + 60.0;
        }
    }

    /// The batched group-fork pipeline is byte-identical to the serial
    /// folded engine path for arbitrary parameterized circuits, widths
    /// 2–7 and any lane count: per-run counts, job timing, and the
    /// backend RNG stream (a second batch from the same backends
    /// surfaces any post-run divergence).
    #[test]
    fn batched_pipeline_is_byte_identical_to_serial(
        n in 2usize..8,
        seed in 0u64..128,
        lanes in 1usize..5,
        shots in 64usize..512,
    ) {
        use qdevice::{CompiledTemplate, TemplateRun};
        use std::f64::consts::FRAC_PI_2;
        let (circuit, num_params, sym_gates) = seeded_sym_circuit(n, seed, 12);
        let active: Vec<usize> = (0..n).collect();
        let params: Vec<f64> = (0..num_params).map(|i| 0.3 + 0.17 * i as f64).collect();
        // The fig4 shape: a forward/backward pair per symbolic gate,
        // plus one unshifted energy run.
        let mut runs = vec![TemplateRun { template: 0, shift: None }];
        for &g in &sym_gates {
            runs.push(TemplateRun { template: 0, shift: Some((g, FRAC_PI_2)) });
            runs.push(TemplateRun { template: 0, shift: Some((g, -FRAC_PI_2)) });
        }
        let mut serial = seven_qubit_backend(seed);
        let mut batched = seven_qubit_backend(seed);
        batched.set_batch_pipeline(qsim::BatchPipeline::new(lanes));
        let mut ta = CompiledTemplate::new(circuit.clone(), active.clone());
        let mut tb = CompiledTemplate::new(circuit, active);
        let mut t = qdevice::SimTime::ZERO;
        for _ in 0..2 {
            let (ca, ra) = serial.execute_templates(&mut [&mut ta], &runs, &params, shots, t);
            let (cb, rb) = batched.execute_templates(&mut [&mut tb], &runs, &params, shots, t);
            prop_assert_eq!(&ca, &cb);
            prop_assert_eq!(
                ra.completed.as_secs().to_bits(),
                rb.completed.as_secs().to_bits()
            );
            t = ra.completed + 60.0;
        }
        prop_assert_eq!(batched.batched_jobs(), 2 * runs.len() as u64);
    }

    /// A whole training session under the fleet-wide pipeline produces
    /// a `TrainingReport` identical to the serial session, for any
    /// client count and lane count.
    #[test]
    fn pipeline_training_report_identical_to_serial(
        clients in 2usize..7,
        lanes in 1usize..5,
        device_seed in 0u64..64,
    ) {
        use eqc_core::{Ensemble, EqcConfig, SimParallelism};
        let problem = vqa::VqeProblem::heisenberg_4q();
        let session = |par: SimParallelism| {
            let mut b = Ensemble::builder();
            for i in 0..clients {
                let spec = qdevice::catalog::by_name("belem").expect("catalog device");
                b = b.backend(spec.backend(device_seed + i as u64));
            }
            b.config(
                EqcConfig::paper_vqe()
                    .with_epochs(2)
                    .with_shots(128)
                    .with_sim_parallelism(par),
            )
            .build()
            .expect("fleet builds")
            .train(&problem)
            .expect("trains")
        };
        let serial = session(SimParallelism::Serial);
        let piped = session(SimParallelism::Pipeline { lanes });
        prop_assert_eq!(&serial, &piped);
        prop_assert_eq!(format!("{serial:?}"), format!("{piped:?}"));
    }

    /// The sparse unitary/channel fast paths agree with the dense
    /// baseline kernels on arbitrary circuits.
    #[test]
    fn sparse_kernels_match_dense_baseline(n in 2usize..8, seed in 0u64..256) {
        use qsim::density::baseline;
        use qsim::{ChannelScratch, DensityMatrix, KrausChannel};
        let circuit = seeded_circuit(n, seed, 12);
        let mut fast = DensityMatrix::new(n);
        let mut dense = DensityMatrix::new(n);
        let mut scratch = ChannelScratch::default();
        let dep1 = KrausChannel::depolarizing_1q(0.02);
        let dep2 = KrausChannel::depolarizing_2q(0.015);
        let damp = KrausChannel::amplitude_damping(0.05);
        for g in circuit.gates() {
            let qs = g.qubits();
            let u = g.matrix(&[]);
            if qs.len() == 1 {
                fast.apply_unitary_1q(&u, qs[0]);
                baseline::apply_unitary_1q(&mut dense, &u, qs[0]);
                fast.apply_channel_buffered(&dep1, &qs, &mut scratch);
                baseline::apply_channel(&mut dense, &dep1, &qs);
                fast.apply_channel_buffered(&damp, &qs, &mut scratch);
                baseline::apply_channel(&mut dense, &damp, &qs);
            } else {
                fast.apply_unitary_2q(&u, qs[0], qs[1]);
                baseline::apply_unitary_2q(&mut dense, &u, qs[0], qs[1]);
                fast.apply_channel_buffered(&dep2, &qs, &mut scratch);
                baseline::apply_channel(&mut dense, &dep2, &qs);
            }
        }
        prop_assert!(
            fast.matrix().approx_eq(&dense.matrix(), 1e-12),
            "sparse fast path drifted from the dense baseline"
        );
    }
}
