//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary circuits, topologies and parameters.

use proptest::prelude::*;
use qcircuit::{Angle, Circuit, Gate};
use transpile::{transpile, Topology, TranspileOptions};

/// Strategy: a random circuit over `n` qubits with 1q rotations, H and CX.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0..n).prop_map(Gate::H),
        (0..n).prop_map(Gate::X),
        (0..n, -3.0..3.0f64).prop_map(|(q, a)| Gate::Ry(q, Angle::Fixed(a))),
        (0..n, -3.0..3.0f64).prop_map(|(q, a)| Gate::Rz(q, Angle::Fixed(a))),
        (0..n, 0..n).prop_filter_map("distinct operands", move |(a, b)| {
            (a != b).then_some(Gate::Cx(a, b))
        }),
    ];
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g).expect("generated gates are valid");
        }
        c
    })
}

/// Remaps ideal logical probabilities through a transpiled layout and
/// compares with the compacted physical circuit's distribution.
fn distributions_match(circuit: &Circuit, topology: &Topology) -> Result<(), String> {
    let t = transpile(circuit, topology, &TranspileOptions::default())
        .map_err(|e| format!("transpile: {e}"))?;
    let (compact, logical_bits) = t
        .compact_for_simulation()
        .map_err(|e| format!("compact: {e}"))?;
    let n = circuit.num_qubits();
    let logical = circuit
        .run_statevector(&[])
        .map_err(|e| format!("logical run: {e}"))?
        .probabilities();
    let physical = compact
        .run_statevector(&[])
        .map_err(|e| format!("physical run: {e}"))?
        .probabilities();
    let mut remapped = vec![0.0; 1 << n];
    for (basis, p) in physical.iter().enumerate() {
        let mut log_basis = 0usize;
        for (l, &bit) in logical_bits.iter().enumerate() {
            if basis >> bit & 1 == 1 {
                log_basis |= 1 << l;
            }
        }
        remapped[log_basis] += p;
    }
    for (i, (a, b)) in logical.iter().zip(&remapped).enumerate() {
        if (a - b).abs() > 1e-8 {
            return Err(format!("basis {i}: logical {a} vs physical {b}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transpilation preserves measurement statistics on every topology
    /// shape of Table I.
    #[test]
    fn transpile_preserves_distribution_line(c in arb_circuit(4, 14)) {
        distributions_match(&c, &Topology::line(5)).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn transpile_preserves_distribution_t_shape(c in arb_circuit(4, 14)) {
        distributions_match(&c, &Topology::t_shape()).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn transpile_preserves_distribution_heavy_hex(c in arb_circuit(4, 10)) {
        distributions_match(&c, &Topology::heavy_hex_27()).map_err(TestCaseError::fail)?;
    }

    /// Transpiled circuits only use native gates on coupled pairs.
    #[test]
    fn transpiled_respects_basis_and_coupling(c in arb_circuit(5, 16)) {
        let topo = Topology::t_shape();
        let t = transpile(&c, &topo, &TranspileOptions::default()).expect("fits");
        for g in t.circuit.gates() {
            prop_assert!(matches!(g, Gate::X(_) | Gate::Sx(_) | Gate::Rz(..) | Gate::Cx(..)));
            let qs = g.qubits();
            if qs.len() == 2 {
                prop_assert!(topo.are_adjacent(qs[0], qs[1]));
            }
        }
    }

    /// The peephole optimizer never changes the unitary (up to phase).
    #[test]
    fn peephole_preserves_unitary(c in arb_circuit(3, 12)) {
        let optimized = transpile::optimize::optimize(&c).expect("optimizes");
        let u0 = c.unitary(&[]).expect("bound");
        let u1 = optimized.unitary(&[]).expect("bound");
        prop_assert!(u1.approx_eq_up_to_phase(&u0, 1e-8));
    }

    /// Counts sampled from any circuit distribution sum to the shot
    /// budget and respect the register width.
    #[test]
    fn sampled_counts_are_consistent(c in arb_circuit(3, 10), shots in 1usize..2000) {
        use rand::SeedableRng;
        let sv = c.run_statevector(&[]).expect("bound");
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let counts = qsim::sampler::sample_counts(&sv.probabilities(), 3, shots, &mut rng);
        prop_assert_eq!(counts.total(), shots as u64);
        for (basis, _) in counts.iter() {
            prop_assert!(basis < 8);
        }
    }

    /// Weight normalization maps any score set into the band.
    #[test]
    fn weights_stay_in_band(ps in proptest::collection::vec(0.0..1.0f64, 2..12)) {
        let bounds = eqc_core::WeightBounds::new(0.25, 1.75).expect("valid band");
        let ws = eqc_core::normalize_weights(&ps, bounds);
        for w in ws {
            prop_assert!((0.25..=1.75).contains(&w));
        }
    }

    /// Eq. 2 stays within [0, 1] for arbitrary circuit metrics and
    /// calibration quality.
    #[test]
    fn p_correct_is_a_probability(
        g1 in 0usize..200,
        g2 in 0usize..100,
        cd in 0usize..150,
        err_scale in 0.1..20.0f64,
    ) {
        let metrics = transpile::CircuitMetrics {
            g1,
            g2,
            measurements: 5,
            critical_depth: cd,
            depth: cd + 1,
            swaps_inserted: 0,
        };
        let mut cal = qdevice::Calibration::uniform(5, 90.0, 70.0, 0.001, 0.01, 0.02);
        cal.degrade(err_scale, 1.0);
        let p = eqc_core::p_correct(&metrics, &cal);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }
}
