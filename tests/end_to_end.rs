//! End-to-end integration: problem -> transpile -> simulated devices ->
//! EQC training, spanning every crate in the workspace.

use eqc::prelude::*;

fn clients(problem: &dyn VqaProblem, names: &[&str], seed: u64) -> Vec<ClientNode> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let be = catalog::by_name(n).expect("catalog device").backend(seed + i as u64);
            ClientNode::new(i, be, problem).expect("fits")
        })
        .collect()
}

#[test]
fn qaoa_end_to_end_on_ensemble() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(25).with_shots(2048);
    let report = EqcTrainer::new(cfg).train(&problem, clients(&problem, &["belem", "manila", "bogota"], 3));
    assert_eq!(report.epochs, 25);
    // Real noisy devices: should still clearly beat random parameters.
    let start = report.history.first().expect("history populated").ideal_loss;
    assert!(
        report.converged_loss(5) < start - 0.1,
        "no learning: start {start}, converged {}",
        report.converged_loss(5)
    );
    assert!(report.total_hours > 0.0);
}

#[test]
fn vqe_end_to_end_single_vs_ensemble_speed() {
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe().with_epochs(3).with_shots(512);
    let single = SingleDeviceTrainer::new(cfg)
        .train(&problem, clients(&problem, &["bogota"], 11).pop().expect("one"));
    let ensemble = EqcTrainer::new(cfg).train(
        &problem,
        clients(&problem, &["lima", "belem", "quito", "manila", "bogota"], 11),
    );
    assert!(
        ensemble.epochs_per_hour() > 2.0 * single.epochs_per_hour(),
        "ensemble {:.1} vs single {:.1}",
        ensemble.epochs_per_hour(),
        single.epochs_per_hour()
    );
}

#[test]
fn qnn_end_to_end_data_parallel() {
    let problem = QnnProblem::synthetic(4, 21);
    let cfg = EqcConfig::paper_qaoa()
        .with_epochs(8)
        .with_shots(1024)
        .with_learning_rate(0.5);
    let report = EqcTrainer::new(cfg).train(&problem, clients(&problem, &["belem", "manila"], 5));
    assert_eq!(report.epochs, 8);
    let start = report.history.first().expect("history").ideal_loss;
    let end = report.final_loss;
    assert!(end <= start + 0.02, "QNN loss should not increase: {start} -> {end}");
}

#[test]
fn deterministic_given_seeds() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(4).with_shots(256);
    let a = EqcTrainer::new(cfg).train(&problem, clients(&problem, &["belem", "x2"], 9));
    let b = EqcTrainer::new(cfg).train(&problem, clients(&problem, &["belem", "x2"], 9));
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.virtual_hours, y.virtual_hours);
        assert_eq!(x.ideal_loss, y.ideal_loss);
    }
}

#[test]
fn threaded_and_des_executors_both_learn() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(15).with_shots(1024);
    let des = EqcTrainer::new(cfg).train(&problem, clients(&problem, &["belem", "manila"], 2));
    let thr = train_threaded(&problem, clients(&problem, &["belem", "manila"], 2), cfg);
    for (label, r) in [("des", &des), ("threaded", &thr)] {
        assert!(
            r.converged_loss(4) < -0.4,
            "{label} failed to learn: {}",
            r.converged_loss(4)
        );
    }
}

#[test]
fn time_cap_terminates_early() {
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe()
        .with_epochs(50)
        .with_shots(256)
        .with_time_cap_hours(2.0);
    let report = SingleDeviceTrainer::new(cfg)
        .train(&problem, clients(&problem, &["santiago"], 4).pop().expect("one"));
    assert!(report.epochs < 50, "santiago cannot finish 50 epochs in 2 h");
}

#[test]
fn multiprogrammed_slots_join_the_ensemble() {
    // Paper Section VII: co-resident programs on a big device train
    // alongside ordinary devices in one EQC ensemble.
    use qdevice::multiprog::{split, MultiprogramConfig};
    let problem = VqeProblem::heisenberg_4q();
    let mut id = 0usize;
    let mut all = Vec::new();
    for name in ["belem", "manila"] {
        let be = catalog::by_name(name).expect("catalog device").backend(80 + id as u64);
        all.push(ClientNode::new(id, be, &problem).expect("fits"));
        id += 1;
    }
    let spec = catalog::by_name("toronto").expect("catalog device");
    let slots = split(&spec, &MultiprogramConfig::default(), 0xCAFE);
    assert!(slots.len() >= 2);
    for s in slots {
        all.push(ClientNode::new(id, s.backend, &problem).expect("region fits"));
        id += 1;
    }
    let n_clients = all.len();
    let cfg = EqcConfig::paper_vqe().with_epochs(2).with_shots(512);
    let report = EqcTrainer::new(cfg).train(&problem, all);
    assert_eq!(report.epochs, 2);
    assert_eq!(report.clients.len(), n_clients);
    // The co-resident slots actually contributed work.
    let slot_tasks: u64 = report
        .clients
        .iter()
        .filter(|c| c.device.contains("/mp"))
        .map(|c| c.tasks_completed)
        .sum();
    assert!(slot_tasks > 0, "multiprogrammed slots never ran");
}

#[test]
fn weighted_training_tracks_device_quality() {
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe()
        .with_epochs(3)
        .with_shots(512)
        .with_weights(WeightBounds::new(0.5, 1.5));
    let report = EqcTrainer::new(cfg).train(
        &problem,
        clients(&problem, &["x2", "bogota", "manila"], 6),
    );
    let x2 = report.clients.iter().find(|c| c.device == "x2").expect("x2 present");
    let bogota = report
        .clients
        .iter()
        .find(|c| c.device == "bogota")
        .expect("bogota present");
    // The noisiest device must carry a lower mean P_correct.
    assert!(
        x2.mean_p_correct < bogota.mean_p_correct,
        "x2 {} vs bogota {}",
        x2.mean_p_correct,
        bogota.mean_p_correct
    );
}
