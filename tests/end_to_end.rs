//! End-to-end integration: problem -> transpile -> simulated devices ->
//! EQC training through the `Ensemble` session API, spanning every crate
//! in the workspace.

use eqc::prelude::*;

fn ensemble(names: &[&str], seed: u64, cfg: EqcConfig) -> Ensemble {
    Ensemble::builder()
        .devices(names.iter().copied())
        .device_seed(seed)
        .config(cfg)
        .build()
        .expect("catalog devices resolve")
}

#[test]
fn qaoa_end_to_end_on_ensemble() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(25).with_shots(2048);
    let report = ensemble(&["belem", "manila", "bogota"], 3, cfg)
        .train(&problem)
        .expect("trains");
    assert_eq!(report.epochs, 25);
    // Real noisy devices: should still clearly beat random parameters.
    let start = report
        .history
        .first()
        .expect("history populated")
        .ideal_loss;
    assert!(
        report.converged_loss(5) < start - 0.1,
        "no learning: start {start}, converged {}",
        report.converged_loss(5)
    );
    assert!(report.total_hours > 0.0);
}

#[test]
fn vqe_end_to_end_single_vs_ensemble_speed() {
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe().with_epochs(3).with_shots(512);
    let single = ensemble(&["bogota"], 11, cfg)
        .train_with(&SequentialExecutor::new(), &problem)
        .expect("trains");
    let eqc = ensemble(&["lima", "belem", "quito", "manila", "bogota"], 11, cfg)
        .train(&problem)
        .expect("trains");
    assert!(
        eqc.epochs_per_hour() > 2.0 * single.epochs_per_hour(),
        "ensemble {:.1} vs single {:.1}",
        eqc.epochs_per_hour(),
        single.epochs_per_hour()
    );
}

#[test]
fn qnn_end_to_end_data_parallel() {
    let problem = QnnProblem::synthetic(4, 21);
    let cfg = EqcConfig::paper_qaoa()
        .with_epochs(8)
        .with_shots(1024)
        .with_learning_rate(0.5);
    let report = ensemble(&["belem", "manila"], 5, cfg)
        .train(&problem)
        .expect("trains");
    assert_eq!(report.epochs, 8);
    let start = report.history.first().expect("history").ideal_loss;
    let end = report.final_loss;
    assert!(
        end <= start + 0.02,
        "QNN loss should not increase: {start} -> {end}"
    );
}

#[test]
fn deterministic_given_seeds() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(4).with_shots(256);
    let a = ensemble(&["belem", "x2"], 9, cfg)
        .train(&problem)
        .expect("trains");
    let b = ensemble(&["belem", "x2"], 9, cfg)
        .train(&problem)
        .expect("trains");
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.virtual_hours, y.virtual_hours);
        assert_eq!(x.ideal_loss, y.ideal_loss);
    }
}

#[test]
fn threaded_and_des_executors_both_learn() {
    let problem = QaoaProblem::maxcut_ring4();
    let cfg = EqcConfig::paper_qaoa().with_epochs(15).with_shots(1024);
    let des = ensemble(&["belem", "manila"], 2, cfg)
        .train(&problem)
        .expect("trains");
    let thr = ensemble(&["belem", "manila"], 2, cfg)
        .train_with(&ThreadedExecutor::new(), &problem)
        .expect("trains");
    for (label, r) in [("des", &des), ("threaded", &thr)] {
        assert!(
            r.converged_loss(4) < -0.4,
            "{label} failed to learn: {}",
            r.converged_loss(4)
        );
    }
}

#[test]
fn time_cap_terminates_early() {
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe()
        .with_epochs(50)
        .with_shots(256)
        .with_time_cap_hours(2.0);
    let report = ensemble(&["santiago"], 4, cfg)
        .train_with(&SequentialExecutor::new(), &problem)
        .expect("trains");
    assert!(
        report.epochs < 50,
        "santiago cannot finish 50 epochs in 2 h"
    );
}

#[test]
fn multiprogrammed_slots_join_the_ensemble() {
    // Paper Section VII: co-resident programs on a big device train
    // alongside ordinary devices in one EQC ensemble.
    use qdevice::multiprog::{split, MultiprogramConfig};
    let problem = VqeProblem::heisenberg_4q();
    let mut builder = Ensemble::builder()
        .device("belem")
        .device("manila")
        .device_seed(80)
        .config(EqcConfig::paper_vqe().with_epochs(2).with_shots(512));
    let spec = catalog::by_name("toronto").expect("catalog device");
    let slots = split(&spec, &MultiprogramConfig::default(), 0xCAFE);
    assert!(slots.len() >= 2);
    let mut n_clients = 2;
    for s in slots {
        builder = builder.backend(s.backend);
        n_clients += 1;
    }
    let report = builder
        .build()
        .expect("builds")
        .train(&problem)
        .expect("trains");
    assert_eq!(report.epochs, 2);
    assert_eq!(report.clients.len(), n_clients);
    // The co-resident slots actually contributed work.
    let slot_tasks: u64 = report
        .clients
        .iter()
        .filter(|c| c.device.contains("/mp"))
        .map(|c| c.tasks_completed)
        .sum();
    assert!(slot_tasks > 0, "multiprogrammed slots never ran");
}

#[test]
fn weighted_training_tracks_device_quality() {
    let problem = VqeProblem::heisenberg_4q();
    let cfg = EqcConfig::paper_vqe()
        .with_epochs(3)
        .with_shots(512)
        .with_weights(WeightBounds::new(0.5, 1.5).expect("valid band"));
    let report = ensemble(&["x2", "bogota", "manila"], 6, cfg)
        .train(&problem)
        .expect("trains");
    let x2 = report
        .clients
        .iter()
        .find(|c| c.device == "x2")
        .expect("x2 present");
    let bogota = report
        .clients
        .iter()
        .find(|c| c.device == "bogota")
        .expect("bogota present");
    // The noisiest device must carry a lower mean P_correct.
    assert!(
        x2.mean_p_correct < bogota.mean_p_correct,
        "x2 {} vs bogota {}",
        x2.mean_p_correct,
        bogota.mean_p_correct
    );
}
