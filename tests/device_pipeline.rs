//! Integration across transpile + qdevice: every Table I device can
//! transpile and execute the paper's circuits with sane results.

use eqc::prelude::*;
use qdevice::SimTime;

#[test]
fn every_device_runs_the_vqe_ansatz() {
    let circuit = vqa::ansatz::hardware_efficient(4);
    let params: Vec<f64> = (0..16).map(|i| 0.1 * i as f64).collect();
    let ideal_probs = circuit
        .run_statevector(&params)
        .expect("bound")
        .probabilities();
    // The ideal most-likely outcome should stay most likely on the
    // *cleanest* devices despite noise.
    let ideal_argmax = ideal_probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty")
        .0 as u64;

    for spec in catalog::catalog() {
        let t = transpile(&circuit, &spec.topology(), &TranspileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let (compact, logical_bits) = t.compact_for_simulation().expect("compacts");
        let bound = compact.bind(&params).expect("bindable");
        let mut backend = spec.backend(17);
        let job = backend.execute(&bound, &t.active_qubits(), 4096, SimTime::ZERO);
        let logical = t.remap_counts(&job.counts, &logical_bits);
        assert_eq!(logical.total(), 4096, "{}", spec.name);
        assert_eq!(logical.num_qubits(), 4, "{}", spec.name);
        if spec.name == "bogota" || spec.name == "manila" {
            let (top, _) = logical.to_sorted_vec()[0];
            assert_eq!(
                top, ideal_argmax,
                "{}: noise flipped the dominant outcome",
                spec.name
            );
        }
    }
}

#[test]
fn ghz_error_orders_by_device_quality() {
    // x2 (noisiest) should show clearly more GHZ error than bogota.
    let mut b = CircuitBuilder::new(5);
    b.h(0);
    for q in 0..4 {
        b.cx(q, q + 1);
    }
    let ghz = b.build();
    let mut errors = std::collections::HashMap::new();
    for name in ["x2", "bogota"] {
        let spec = catalog::by_name(name).expect("catalog device");
        let t = transpile(&ghz, &spec.topology(), &TranspileOptions::default()).expect("fits");
        let (compact, logical_bits) = t.compact_for_simulation().expect("compacts");
        let mut backend = spec.backend(23);
        let job = backend.execute(
            &compact.bind(&[]).expect("no params"),
            &t.active_qubits(),
            8192,
            SimTime::ZERO,
        );
        let logical = t.remap_counts(&job.counts, &logical_bits);
        let err = 1.0 - logical.fraction_where(|b| b == 0 || b == 0b11111);
        errors.insert(name, err);
    }
    assert!(
        errors["x2"] > 1.5 * errors["bogota"],
        "x2 {} vs bogota {}",
        errors["x2"],
        errors["bogota"]
    );
}

#[test]
fn queue_latency_orders_devices() {
    // One identical job on each device: Manhattan's completion must be
    // orders of magnitude later than x2's.
    let mut b = CircuitBuilder::new(2);
    b.h(0).cx(0, 1);
    let bell = b.build();
    let mut latency = std::collections::HashMap::new();
    for name in ["x2", "santiago", "manhattan"] {
        let spec = catalog::by_name(name).expect("catalog device");
        let mut backend = spec.backend(31);
        let job = backend.execute(&bell, &[0, 1], 8192, SimTime::ZERO);
        latency.insert(name, job.completed - job.submitted);
    }
    assert!(latency["x2"] < latency["santiago"]);
    assert!(latency["santiago"] < latency["manhattan"]);
    assert!(latency["manhattan"] / latency["x2"] > 20.0);
}

#[test]
fn drift_impacts_execution_not_reports() {
    let spec = catalog::by_name("casablanca").expect("catalog device");
    let backend = spec.backend(41);
    // During the paper-modeled episode, actual noise spikes while the
    // reported calibration is oblivious. Compare within one calibration
    // cycle (hours 19 vs 21) so per-cycle jitter cancels.
    let before = backend.actual_calibration(SimTime::from_hours(19.0));
    let during = backend.actual_calibration(SimTime::from_hours(21.0));
    assert!(during.mean_cx_error() > 3.0 * before.mean_cx_error());
    let rep_before = backend.reported_calibration(SimTime::from_hours(19.0));
    let rep_during = backend.reported_calibration(SimTime::from_hours(21.0));
    assert_eq!(rep_before.mean_cx_error(), rep_during.mean_cx_error());
}

#[test]
fn p_correct_prefers_better_topology_and_calibration() {
    use eqc_core::p_correct;
    let circuit = vqa::ansatz::hardware_efficient(4);
    // Same calibration, different topologies: fully-connected routes with
    // fewer CX, so it must score at least as well.
    let cal = qdevice::Calibration::uniform(5, 100.0, 80.0, 0.001, 0.01, 0.02);
    let full = transpile(
        &circuit,
        &Topology::fully_connected(5),
        &TranspileOptions::default(),
    )
    .expect("fits");
    let line = transpile(&circuit, &Topology::line(5), &TranspileOptions::default()).expect("fits");
    assert!(p_correct(&full.metrics, &cal) >= p_correct(&line.metrics, &cal));
}
