//! # eqc — Ensembled Quantum Computing for Variational Quantum Algorithms
//!
//! A from-scratch Rust reproduction of *"EQC: Ensembled Quantum Computing
//! for Variational Quantum Algorithms"* (Stein et al., ISCA 2022,
//! arXiv:2111.14940), including every substrate the paper depends on:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Simulation | [`qsim`] | complex linear algebra, state vectors, density matrices, Kraus noise |
//! | Circuits | [`qcircuit`] | gate IR, symbolic parameters, Pauli Hamiltonians, measurement planning |
//! | Transpiler | [`transpile`] | topologies, layout, SWAP routing, IBM basis rewriting, peephole |
//! | Devices | [`qdevice`] | Table I catalog, calibration drift, cloud queues, noisy execution |
//! | Workloads | [`vqa`] | Heisenberg VQE, MaxCut QAOA, QNN; parameter-shift gradients |
//! | Framework | [`eqc_core`] | master/client ASGD ensemble, Eq. 2 weighting, convergence bound |
//!
//! ## Quickstart: train a QAOA MaxCut on a simulated ensemble
//!
//! ```
//! use eqc::prelude::*;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let clients: Vec<ClientNode> = ["belem", "manila", "bogota"]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, name)| {
//!         let backend = qdevice::catalog::by_name(name).unwrap().backend(i as u64);
//!         ClientNode::new(i, backend, &problem).unwrap()
//!     })
//!     .collect();
//! let config = EqcConfig::paper_qaoa().with_epochs(5).with_shots(512);
//! let report = EqcTrainer::new(config).train(&problem, clients);
//! println!("{report}");
//! assert_eq!(report.epochs, 5);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

#![warn(missing_docs)]

pub use eqc_core;
pub use qcircuit;
pub use qdevice;
pub use qsim;
pub use transpile;
pub use vqa;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use eqc_core::{
        ideal_backend, train_ideal, train_threaded, ClientNode, EqcConfig, EqcTrainer,
        SingleDeviceTrainer, TrainingReport, WeightBounds,
    };
    pub use qcircuit::{Circuit, CircuitBuilder, Gate, Hamiltonian, PauliString};
    pub use qdevice::{catalog, DeviceSpec, QpuBackend, SimTime};
    pub use qsim::{Counts, DensityMatrix, StateVector};
    pub use transpile::{transpile, Topology, TranspileOptions};
    pub use vqa::{Graph, QaoaProblem, QnnProblem, VqaProblem, VqeProblem};
}
