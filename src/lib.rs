//! # eqc — Ensembled Quantum Computing for Variational Quantum Algorithms
//!
//! A from-scratch Rust reproduction of *"EQC: Ensembled Quantum Computing
//! for Variational Quantum Algorithms"* (Stein et al., ISCA 2022,
//! arXiv:2111.14940), including every substrate the paper depends on:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Simulation | [`qsim`] | complex linear algebra, state vectors, density matrices, Kraus noise |
//! | Circuits | [`qcircuit`] | gate IR, symbolic parameters, Pauli Hamiltonians, measurement planning |
//! | Transpiler | [`transpile`] | topologies, layout, SWAP routing, IBM basis rewriting, peephole |
//! | Devices | [`qdevice`] | Table I catalog, calibration drift, cloud queues, noisy execution |
//! | Workloads | [`vqa`] | Heisenberg VQE, MaxCut QAOA, QNN; parameter-shift gradients |
//! | Framework | [`eqc_core`] | `Ensemble` session API, pluggable executors, Eq. 2 weighting |
//!
//! ## Quickstart: train a QAOA MaxCut on a simulated ensemble
//!
//! ```
//! use eqc::prelude::*;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let report = Ensemble::builder()
//!     .device("belem")
//!     .device("manila")
//!     .device("bogota")
//!     .config(EqcConfig::paper_qaoa().with_epochs(5).with_shots(512))
//!     .build()?
//!     .train(&problem)?;
//! println!("{report}");
//! assert_eq!(report.epochs, 5);
//! # Ok::<(), EqcError>(())
//! ```
//!
//! Training always runs through an [`Executor`](eqc_core::Executor):
//! the default above is the deterministic [`DiscreteEventExecutor`]
//! (same seed, same report); swap in the [`ThreadedExecutor`] for real
//! OS-thread concurrency or the [`SequentialExecutor`] for the paper's
//! single-machine and synchronous baselines:
//!
//! ```
//! use eqc::prelude::*;
//!
//! let problem = QaoaProblem::maxcut_ring4();
//! let ensemble = Ensemble::builder()
//!     .device("belem")
//!     .config(EqcConfig::paper_qaoa().with_epochs(2).with_shots(256))
//!     .build()?;
//! let single = ensemble.train_with(&SequentialExecutor::new(), &problem)?;
//! assert!(single.trainer.starts_with("single:"));
//! # Ok::<(), EqcError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.
//!
//! [`DiscreteEventExecutor`]: eqc_core::DiscreteEventExecutor
//! [`ThreadedExecutor`]: eqc_core::ThreadedExecutor
//! [`SequentialExecutor`]: eqc_core::SequentialExecutor

#![warn(missing_docs)]

pub use eqc_core;
pub use qcircuit;
pub use qdevice;
pub use qsim;
pub use transpile;
pub use vqa;

/// Convenient single-import surface for applications.
///
/// The deprecated pre-0.2 trainer shims (`EqcTrainer`,
/// `SingleDeviceTrainer`, `SyncEnsembleTrainer`, `train_ideal`,
/// `train_threaded`) are gone — every entry point flows through the
/// [`Ensemble`](eqc_core::Ensemble) session API (or the multi-tenant
/// [`FleetRuntime`](eqc_core::FleetRuntime) on a shared device pool).
pub mod prelude {
    pub use eqc_core::policy::{
        AlwaysHealthy, ClientHealth, Composed, ContentionAware, Cyclic, DriftEviction,
        EarliestDeadlineFirst, EquiEnsemble, FairShare, FidelityWeighted, FleetOccupancy,
        LeastLoaded, LookaheadLeastLoaded, PriorityArbiter, Scheduler, StalenessDecay,
        TenantArbiter, Unshared, Weighting,
    };
    pub use eqc_core::{
        ideal_backend, ClientNode, DeviceOccupancy, DiscreteEventExecutor, EngineTelemetry,
        Ensemble, EnsembleBuilder, EnsembleSession, EqcConfig, EqcError, EvictionEvent, Executor,
        FleetBuilder, FleetOutcome, FleetRuntime, FleetService, FleetTelemetry, MembershipChange,
        PolicyConfig, PolicyTelemetry, PoolConfig, PoolTelemetry, PooledExecutor,
        SequentialExecutor, ServiceConfig, ServiceOutcome, ServiceTelemetry, ServiceTenantRecord,
        SimParallelism, TenantConfig, TenantHandle, TenantId, TenantTelemetry, ThreadedExecutor,
        TrainingReport, WeightBounds, WeightProvenance,
    };
    pub use qcircuit::{Circuit, CircuitBuilder, Gate, Hamiltonian, PauliString};
    pub use qdevice::{catalog, DeviceSpec, LoadCurve, LoadModel, QpuBackend, SimTime};
    pub use qsim::{Counts, DensityMatrix, StateVector};
    pub use transpile::{transpile, Topology, TranspileOptions};
    pub use vqa::{Graph, QaoaProblem, QnnProblem, VqaProblem, VqeProblem};
}
